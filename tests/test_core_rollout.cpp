// Unit tests for core/rollout and core/metrics: energy accounting, safety
// detection, trajectory recording, Monte-Carlo evaluation determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/perturbation.h"
#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "core/metrics.h"
#include "core/rollout.h"
#include "sys/registry.h"
#include "sys/vanderpol.h"

namespace cocktail {
namespace {

using la::Vec;

TEST(Rollout, EnergyIsSumOfL1Controls) {
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  util::Rng rng(1);
  core::RolloutConfig config;
  config.horizon = 10;
  const auto result = core::rollout(vdp, zero, {0.1, 0.1}, nullptr, rng, config);
  EXPECT_DOUBLE_EQ(result.energy, 0.0);
  EXPECT_EQ(result.steps_taken, 10);
  EXPECT_TRUE(result.safe);
}

TEST(Rollout, ClipsControlBeforeEnergy) {
  // A constant huge-output controller must be charged |U_sup| per step, not
  // its raw output — Eq. (4)'s clip applies before the plant and the meter.
  class HugeController final : public ctrl::Controller {
   public:
    [[nodiscard]] Vec act(const Vec&) const override { return {1e6}; }
    [[nodiscard]] std::size_t state_dim() const override { return 2; }
    [[nodiscard]] std::size_t control_dim() const override { return 1; }
    [[nodiscard]] std::string describe() const override { return "huge"; }
  };
  const sys::VanDerPol vdp;
  const HugeController huge;
  util::Rng rng(2);
  core::RolloutConfig config;
  config.horizon = 5;
  const auto result =
      core::rollout(vdp, huge, {0.0, 0.0}, nullptr, rng, config);
  EXPECT_LE(result.energy, 5 * 20.0 + 1e-9);
}

TEST(Rollout, DetectsUnsafeAndStops) {
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  util::Rng rng(3);
  // Start near the corner where the uncontrolled flow exits X.
  const auto result = core::rollout(vdp, zero, {1.95, 1.9}, nullptr, rng);
  EXPECT_FALSE(result.safe);
  EXPECT_LT(result.steps_taken, vdp.horizon());
  EXPECT_FALSE(vdp.is_safe(result.final_state));
}

TEST(Rollout, UnsafeInitialStateIsImmediate) {
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  util::Rng rng(4);
  const auto result = core::rollout(vdp, zero, {2.5, 0.0}, nullptr, rng);
  EXPECT_FALSE(result.safe);
  EXPECT_EQ(result.steps_taken, 0);
}

TEST(Rollout, RecordsTrajectory) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  util::Rng rng(5);
  core::RolloutConfig config;
  config.horizon = 20;
  config.record_trajectory = true;
  const auto result = core::rollout(vdp, lqr, {0.5, 0.5}, nullptr, rng, config);
  ASSERT_TRUE(result.safe);
  EXPECT_EQ(result.states.size(), 21u);   // initial + 20.
  EXPECT_EQ(result.controls.size(), 20u);
  // Controls must respect the clip.
  for (const auto& u : result.controls) EXPECT_LE(std::abs(u[0]), 20.0);
}

TEST(Rollout, PerturbationChangesOutcomeDeterministically) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  const attack::UniformNoise noise(Vec{0.3, 0.3});
  util::Rng rng_a(6), rng_b(6), rng_c(7);
  const auto clean = core::rollout(vdp, lqr, {1.0, 1.0}, nullptr, rng_a);
  const auto noisy_1 = core::rollout(vdp, lqr, {1.0, 1.0}, &noise, rng_b);
  util::Rng rng_b2(6);
  const auto noisy_2 = core::rollout(vdp, lqr, {1.0, 1.0}, &noise, rng_b2);
  EXPECT_NE(clean.energy, noisy_1.energy);
  EXPECT_DOUBLE_EQ(noisy_1.energy, noisy_2.energy);  // same seed, same run.
  (void)rng_c;
}

TEST(Evaluate, PerfectControllerOnEasySystem) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.1);
  core::EvalConfig config;
  config.num_initial_states = 100;
  config.seed = 99;
  const auto result = core::evaluate(vdp, lqr, config);
  EXPECT_EQ(result.num_total, 100);
  // High-authority LQR keeps nearly every initial state safe.
  EXPECT_GT(result.safe_rate, 0.9);
  EXPECT_GT(result.mean_energy, 0.0);
}

TEST(Evaluate, DeterministicAcrossCalls) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  core::EvalConfig config;
  config.num_initial_states = 50;
  config.seed = 31;
  const auto a = core::evaluate(vdp, lqr, config);
  const auto b = core::evaluate(vdp, lqr, config);
  EXPECT_EQ(a.num_safe, b.num_safe);
  EXPECT_DOUBLE_EQ(a.mean_energy, b.mean_energy);
}

TEST(Evaluate, ZeroControllerHasZeroEnergy) {
  const sys::VanDerPol vdp;
  const ctrl::ZeroController zero(2, 1);
  core::EvalConfig config;
  config.num_initial_states = 50;
  config.seed = 32;
  const auto result = core::evaluate(vdp, zero, config);
  // Zero control costs zero energy on the safe trajectories; with no safe
  // trajectory at all the mean is undefined (NaN by the EvalResult
  // contract), never a fake 0.0.
  if (result.num_safe > 0)
    EXPECT_DOUBLE_EQ(result.mean_energy, 0.0);
  else
    EXPECT_TRUE(std::isnan(result.mean_energy));
  // The Van der Pol limit cycle reaches |s2| ~ 2.7 > 2, so the uncontrolled
  // system is almost never safe over T = 100 steps — active control is
  // genuinely required in this benchmark.
  EXPECT_LT(result.safe_rate, 0.2);
}

TEST(Evaluate, MeanEnergyIsNanWhenNothingIsSafe) {
  // The EvalResult convention PR'd across PairedOutcome and EvalResult: an
  // all-unsafe evaluation reports NaN mean energy, so checkpoint selection
  // can never mistake "nothing survived" for "survived for free".
  std::vector<core::RolloutResult> rollouts(3);
  for (auto& r : rollouts) {
    r.safe = false;
    r.energy = 5.0;
  }
  const auto result = core::summarize_rollouts(rollouts, 0, rollouts.size());
  EXPECT_EQ(result.num_safe, 0);
  EXPECT_DOUBLE_EQ(result.safe_rate, 0.0);
  EXPECT_TRUE(std::isnan(result.mean_energy));
  EXPECT_EQ(core::format_energy(result.mean_energy), "-");
  EXPECT_EQ(core::format_energy(12.34), "12.3");
}

TEST(Evaluate, SafeRateDropsUnderStrongNoise) {
  const sys::VanDerPol vdp;
  const auto lqr = ctrl::LqrController::synthesize(vdp, 1.0, 0.5);
  core::EvalConfig clean;
  clean.num_initial_states = 100;
  clean.seed = 33;
  core::EvalConfig noisy = clean;
  noisy.perturbation =
      std::make_shared<attack::UniformNoise>(Vec{0.8, 0.8});
  const auto r_clean = core::evaluate(vdp, lqr, clean);
  const auto r_noisy = core::evaluate(vdp, lqr, noisy);
  EXPECT_GE(r_clean.safe_rate, r_noisy.safe_rate);
}

TEST(LipschitzMetric, NegativeForUncertifiedControllers) {
  nn::Mlp net = nn::Mlp::make(2, {4}, 1, nn::Activation::kTanh,
                              nn::Activation::kTanh, 1);
  const ctrl::NnController nn_ctrl(std::move(net), {1.0}, "k");
  EXPECT_GT(core::lipschitz_metric(nn_ctrl), 0.0);
}

}  // namespace
}  // namespace cocktail
