// Tests for the batched rollout engine: results must be bitwise identical
// to serial rollouts for fixed per-job seeds, regardless of worker count,
// and make_eval_jobs must reproduce the evaluator's historical seeding.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "attack/fgsm.h"
#include "attack/perturbation.h"
#include "control/nn_controller.h"
#include "core/metrics.h"
#include "core/rollout.h"
#include "nn/mlp.h"
#include "sys/vanderpol.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cocktail {
namespace {

ctrl::NnController make_controller(std::uint64_t seed = 7) {
  nn::Mlp net = nn::Mlp::make(2, {16}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, seed);
  return ctrl::NnController(std::move(net), {1.0}, "k");
}

std::vector<core::RolloutJob> make_jobs(
    const sys::System& system, int count,
    const attack::PerturbationModel* perturbation) {
  std::vector<core::RolloutJob> jobs;
  util::Rng rng(99);
  for (int k = 0; k < count; ++k) {
    core::RolloutJob job;
    job.initial_state = system.sample_initial_state(rng);
    job.seed = util::derive_seed(4242, static_cast<std::uint64_t>(k));
    job.perturbation = perturbation;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void expect_bitwise_equal(const core::RolloutResult& a,
                          const core::RolloutResult& b, std::size_t index) {
  EXPECT_EQ(a.safe, b.safe) << "job " << index;
  EXPECT_EQ(a.steps_taken, b.steps_taken) << "job " << index;
  // Bitwise: no tolerance anywhere.
  EXPECT_EQ(a.energy, b.energy) << "job " << index;
  EXPECT_EQ(a.final_state, b.final_state) << "job " << index;
  EXPECT_EQ(a.states, b.states) << "job " << index;
  EXPECT_EQ(a.controls, b.controls) << "job " << index;
}

TEST(BatchRollout, MatchesSerialRolloutBitwise) {
  const sys::VanDerPol system;
  const auto controller = make_controller();
  const auto jobs = make_jobs(system, 40, nullptr);

  core::BatchRolloutConfig config;
  config.rollout.record_trajectory = true;
  config.num_workers = 4;
  const auto batched = core::batch_rollout(system, controller, jobs, config);

  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    util::Rng rng(jobs[i].seed);
    const auto serial =
        core::rollout(system, controller, jobs[i].initial_state,
                      jobs[i].perturbation, rng, config.rollout);
    expect_bitwise_equal(batched[i], serial, i);
  }
}

TEST(BatchRollout, WorkerCountNeverChangesResults) {
  const sys::VanDerPol system;
  const auto controller = make_controller();
  const attack::UniformNoise noise({0.2, 0.2});
  const auto jobs = make_jobs(system, 60, &noise);

  core::BatchRolloutConfig serial_config;
  serial_config.rollout.record_trajectory = true;
  serial_config.num_workers = 1;
  const auto reference =
      core::batch_rollout(system, controller, jobs, serial_config);

  for (const int workers : {0, 2, 4, 8}) {
    core::BatchRolloutConfig config = serial_config;
    config.num_workers = workers;
    const auto batched = core::batch_rollout(system, controller, jobs, config);
    ASSERT_EQ(batched.size(), reference.size()) << workers << " workers";
    for (std::size_t i = 0; i < reference.size(); ++i)
      expect_bitwise_equal(batched[i], reference[i], i);
  }
}

TEST(BatchRollout, GradientAttackJobsAreDeterministicAcrossWorkers) {
  const sys::VanDerPol system;
  const auto controller = make_controller();
  const attack::FgsmAttack fgsm({0.25, 0.25});
  const auto jobs = make_jobs(system, 30, &fgsm);

  core::BatchRolloutConfig serial_config;
  serial_config.num_workers = 1;
  const auto reference =
      core::batch_rollout(system, controller, jobs, serial_config);
  core::BatchRolloutConfig parallel_config;
  parallel_config.num_workers = 4;
  const auto batched =
      core::batch_rollout(system, controller, jobs, parallel_config);
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_bitwise_equal(batched[i], reference[i], i);
}

TEST(BatchRollout, ExternalPoolMatchesDedicatedWorkers) {
  // A caller-owned pool (BatchRolloutConfig::pool) must behave exactly like
  // the per-call worker configs, and survive reuse across batches.
  const sys::VanDerPol system;
  const auto controller = make_controller();
  const auto jobs = make_jobs(system, 20, nullptr);

  core::BatchRolloutConfig serial_config;
  serial_config.rollout.record_trajectory = true;
  serial_config.num_workers = 1;
  const auto reference =
      core::batch_rollout(system, controller, jobs, serial_config);

  util::ThreadPool pool(3);
  core::BatchRolloutConfig pooled_config = serial_config;
  pooled_config.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    const auto batched =
        core::batch_rollout(system, controller, jobs, pooled_config);
    ASSERT_EQ(batched.size(), reference.size()) << "round " << round;
    for (std::size_t i = 0; i < reference.size(); ++i)
      expect_bitwise_equal(batched[i], reference[i], i);
  }
}

TEST(BatchRollout, EmptyBatchReturnsEmpty) {
  const sys::VanDerPol system;
  const auto controller = make_controller();
  const auto results = core::batch_rollout(system, controller, {}, {});
  EXPECT_TRUE(results.empty());
}

TEST(BatchRollout, DistinctSeedsDrawDistinctDisturbanceStreams) {
  const sys::VanDerPol system;
  const auto controller = make_controller();
  std::vector<core::RolloutJob> jobs(2);
  jobs[0].initial_state = {0.5, 0.5};
  jobs[0].seed = 1;
  jobs[1].initial_state = {0.5, 0.5};
  jobs[1].seed = 2;
  core::BatchRolloutConfig config;
  config.rollout.record_trajectory = true;
  config.num_workers = 2;
  const auto results = core::batch_rollout(system, controller, jobs, config);
  ASSERT_EQ(results.size(), 2u);
  // Same start, different ω streams: the trajectories must diverge.
  EXPECT_NE(results[0].states, results[1].states);
}

TEST(BatchRolloutPaired, FusedBatchMatchesTwoBatchesBitwise) {
  // The fused 2N-job stream must reproduce the two-batch implementation
  // exactly: per-job streams re-seed from the job, so fusing cannot change
  // any trajectory.
  const sys::VanDerPol system;
  const auto a = make_controller(7);
  const auto b = make_controller(8);
  const attack::UniformNoise noise({0.15, 0.15});
  const auto jobs = make_jobs(system, 50, &noise);

  core::BatchRolloutConfig config;
  config.rollout.record_trajectory = true;
  config.num_workers = 4;
  const auto two_a = core::batch_rollout(system, a, jobs, config);
  const auto two_b = core::batch_rollout(system, b, jobs, config);
  const auto fused = core::batch_rollout_paired(system, a, b, jobs, config);

  ASSERT_EQ(fused.a.size(), jobs.size());
  ASSERT_EQ(fused.b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_bitwise_equal(fused.a[i], two_a[i], i);
    expect_bitwise_equal(fused.b[i], two_b[i], i);
  }
}

TEST(BatchRolloutPaired, WorkerCountNeverChangesResults) {
  const sys::VanDerPol system;
  const auto a = make_controller(7);
  const auto b = make_controller(8);
  const auto jobs = make_jobs(system, 30, nullptr);

  core::BatchRolloutConfig serial_config;
  serial_config.num_workers = 1;
  const auto reference =
      core::batch_rollout_paired(system, a, b, jobs, serial_config);
  for (const int workers : {0, 2, 8}) {
    core::BatchRolloutConfig config;
    config.num_workers = workers;
    const auto fused = core::batch_rollout_paired(system, a, b, jobs, config);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      expect_bitwise_equal(fused.a[i], reference.a[i], i);
      expect_bitwise_equal(fused.b[i], reference.b[i], i);
    }
  }
}

TEST(BatchRolloutPaired, EmptyBatchReturnsEmpty) {
  const sys::VanDerPol system;
  const auto a = make_controller(7);
  const auto b = make_controller(8);
  const auto fused = core::batch_rollout_paired(system, a, b, {}, {});
  EXPECT_TRUE(fused.a.empty());
  EXPECT_TRUE(fused.b.empty());
}

TEST(MakeEvalJobs, ReproducesTheEvaluatorSeedingScheme) {
  const sys::VanDerPol system;
  constexpr std::uint64_t kSeed = 31337;
  const auto jobs = core::make_eval_jobs(system, 25, kSeed, nullptr);
  ASSERT_EQ(jobs.size(), 25u);

  util::Rng init_rng(util::derive_seed(kSeed, 1));
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].initial_state, system.sample_initial_state(init_rng));
    EXPECT_EQ(jobs[k].seed, util::derive_seed(kSeed, 1000 + k));
    EXPECT_EQ(jobs[k].perturbation, nullptr);
  }
}

TEST(Evaluate, MatchesTheHistoricalSerialLoop) {
  // The pre-batching evaluator, reimplemented verbatim: evaluate() must
  // keep producing the identical Monte-Carlo numbers now that it fans the
  // same grid across the pool.
  const sys::VanDerPol system;
  const auto controller = make_controller();
  core::EvalConfig config;
  config.num_initial_states = 50;
  config.seed = 2468;

  util::Rng init_rng(util::derive_seed(config.seed, 1));
  int num_safe = 0;
  double energy_sum = 0.0;
  for (int k = 0; k < config.num_initial_states; ++k) {
    const la::Vec s0 = system.sample_initial_state(init_rng);
    util::Rng traj_rng(util::derive_seed(config.seed, 1000 + k));
    const auto r =
        core::rollout(system, controller, s0, nullptr, traj_rng);
    if (r.safe) {
      ++num_safe;
      energy_sum += r.energy;
    }
  }

  const auto result = core::evaluate(system, controller, config);
  EXPECT_EQ(result.num_total, config.num_initial_states);
  EXPECT_EQ(result.num_safe, num_safe);
  // mean_energy is NaN when nothing was safe (EvalResult contract).
  if (num_safe == 0)
    EXPECT_TRUE(std::isnan(result.mean_energy));
  else
    EXPECT_EQ(result.mean_energy, energy_sum / num_safe);
}

}  // namespace
}  // namespace cocktail
