// Serving-runtime benchmark: throughput and latency of
// serve::ControllerServer under open-loop (request flood) and closed-loop
// (plant-in-the-loop clients) traffic, swept over micro-batch size and
// worker count.
//
// Self-contained and cold-cache friendly: the served network is a synthetic
// student on the Van der Pol plant with an LQR fallback, so no trained
// artifacts are needed.  Reported per configuration: QPS, p50/p99 latency,
// and the primary/fallback/batch counters.  Answers are bitwise independent
// of the configuration (the serving determinism contract), so the sweep
// measures cost only.
//
// Usage: bench_serve [--requests N] [--clients C] [--steps T]
//        bench_serve --smoke        (tiny counts; the CI Release smoke run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "nn/mlp.h"
#include "serve/controller_server.h"
#include "serve/safety_monitor.h"
#include "sys/vanderpol.h"
#include "util/csv.h"
#include "util/paths.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace cocktail;

struct Options {
  int requests = 20000;  ///< open-loop requests per configuration.
  int clients = 8;       ///< concurrent submitter threads.
  int steps = 200;       ///< closed-loop plant steps per client.
};

struct SweepPoint {
  std::size_t max_batch;
  int num_workers;
  long linger_us;
};

struct Measured {
  double seconds = 0.0;
  serve::ServeCounters counters;
  std::vector<double> latencies_us;  ///< sorted after measure().

  [[nodiscard]] double qps() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds
                         : 0.0;
  }
  [[nodiscard]] double percentile(double p) const {
    if (latencies_us.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[rank];
  }
};

serve::ServeConfig make_config(const SweepPoint& point) {
  serve::ServeConfig config;
  config.max_batch = point.max_batch;
  config.num_workers = point.num_workers;
  config.max_wait = std::chrono::microseconds(point.linger_us);
  return config;
}

std::shared_ptr<const ctrl::NnController> make_student() {
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 7);
  return std::make_shared<const ctrl::NnController>(std::move(net),
                                                    la::Vec{1.0}, "k*");
}

void register_vdp(serve::ControllerServer& server, const sys::VanDerPol& vdp) {
  server.register_controller(
      "vdp", make_student(),
      std::make_shared<ctrl::LqrController>(
          ctrl::LqrController::synthesize(vdp, 1.0, 0.5)),
      serve::SafetyMonitor::inside_box(vdp.safe_region(), 0.05));
}

/// Request flood: `clients` threads submit pre-sampled states as fast as
/// the server accepts them; latency is submit()→get() per request.
Measured open_loop(const Options& options, const SweepPoint& point) {
  const sys::VanDerPol vdp;
  serve::ControllerServer server(make_config(point));
  register_vdp(server, vdp);

  util::Rng rng(424242);
  std::vector<la::Vec> states;
  states.reserve(static_cast<std::size_t>(options.requests));
  const sys::Box sampling = vdp.sampling_region();
  for (int k = 0; k < options.requests; ++k)
    states.push_back(sampling.sample(rng));

  Measured measured;
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(options.clients));
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      auto& latencies = per_client[static_cast<std::size_t>(c)];
      for (std::size_t i = static_cast<std::size_t>(c); i < states.size();
           i += static_cast<std::size_t>(options.clients)) {
        const auto start = std::chrono::steady_clock::now();
        la::Vec action = server.submit("vdp", states[i]).get();
        const auto stop = std::chrono::steady_clock::now();
        (void)action;
        latencies.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  measured.seconds = timer.seconds();
  measured.counters = server.counters("vdp");
  for (auto& latencies : per_client)
    measured.latencies_us.insert(measured.latencies_us.end(),
                                 latencies.begin(), latencies.end());
  std::sort(measured.latencies_us.begin(), measured.latencies_us.end());
  return measured;
}

/// Plant-in-the-loop: each client simulates its own Van der Pol episode and
/// must wait for the served action before it can step — the serving pattern
/// where latency, not throughput, gates control quality.
Measured closed_loop(const Options& options, const SweepPoint& point) {
  const sys::VanDerPol vdp;
  serve::ControllerServer server(make_config(point));
  register_vdp(server, vdp);

  Measured measured;
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(options.clients));
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(7000 + static_cast<std::uint64_t>(c));
      la::Vec s = vdp.sample_initial_state(rng);
      auto& latencies = per_client[static_cast<std::size_t>(c)];
      for (int t = 0; t < options.steps; ++t) {
        const auto start = std::chrono::steady_clock::now();
        const la::Vec u = server.submit("vdp", s).get();
        const auto stop = std::chrono::steady_clock::now();
        latencies.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
        s = vdp.step(s, vdp.clip_control(u), vdp.sample_disturbance(rng));
        if (!vdp.is_safe(s)) s = vdp.sample_initial_state(rng);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  measured.seconds = timer.seconds();
  measured.counters = server.counters("vdp");
  for (auto& latencies : per_client)
    measured.latencies_us.insert(measured.latencies_us.end(),
                                 latencies.begin(), latencies.end());
  std::sort(measured.latencies_us.begin(), measured.latencies_us.end());
  return measured;
}

void report(util::CsvWriter& csv, const char* mode, const SweepPoint& point,
            const Measured& measured) {
  std::printf("%-11s %9zu %8d %9ld %11.0f %10.1f %10.1f %9llu %9llu\n", mode,
              point.max_batch, point.num_workers, point.linger_us,
              measured.qps(), measured.percentile(0.50),
              measured.percentile(0.99),
              static_cast<unsigned long long>(measured.counters.fallback),
              static_cast<unsigned long long>(measured.counters.batches));
  csv.row_text({mode, std::to_string(point.max_batch),
                std::to_string(point.num_workers),
                std::to_string(point.linger_us),
                util::format_number(measured.qps()),
                util::format_number(measured.percentile(0.50)),
                util::format_number(measured.percentile(0.99)),
                std::to_string(measured.counters.fallback),
                std::to_string(measured.counters.batches)});
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_int = [&](int fallback) {
      return i + 1 < argc ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--smoke") {
      // Tiny counts for the CI Release smoke run: exercises every sweep
      // point end to end in well under a second.
      options.requests = 200;
      options.clients = 4;
      options.steps = 20;
    } else if (arg == "--requests") {
      options.requests = next_int(options.requests);
    } else if (arg == "--clients") {
      options.clients = next_int(options.clients);
    } else if (arg == "--steps") {
      options.steps = next_int(options.steps);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--requests N] [--clients C] "
                   "[--steps T] [--smoke]\n");
      return 2;
    }
  }
  if (options.requests <= 0 || options.clients <= 0 || options.steps <= 0) {
    std::fprintf(stderr, "bench_serve: counts must be positive\n");
    return 2;
  }

  std::printf(
      "Controller serving runtime: micro-batched inference with "
      "certified-safety fallback\n"
      "open-loop: %d requests / %d clients; closed-loop: %d clients x %d "
      "steps\n\n",
      options.requests, options.clients, options.clients, options.steps);
  std::printf("%-11s %9s %8s %9s %11s %10s %10s %9s %9s\n", "mode", "batch",
              "workers", "linger_us", "qps", "p50_us", "p99_us", "fallback",
              "batches");

  util::CsvWriter csv(util::output_dir() + "/bench_serve.csv",
                      {"mode", "max_batch", "num_workers", "linger_us", "qps",
                       "p50_us", "p99_us", "fallback", "batches"});

  const std::vector<SweepPoint> sweep = {
      {1, 1, 0}, {8, 1, 200}, {32, 1, 200}, {32, 2, 200}, {32, 4, 200}};
  for (const SweepPoint& point : sweep) {
    report(csv, "open-loop", point, open_loop(options, point));
    report(csv, "closed-loop", point, closed_loop(options, point));
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/bench_serve.csv").c_str());
  return 0;
}
