// Serving-runtime benchmark: throughput and latency of the sharded
// serve::ControllerServer under open-loop (request flood) and closed-loop
// (plant-in-the-loop clients) traffic, swept over micro-batch size, worker
// count, dispatcher count, and MPMC queue shards — plus a simulated
// million-client open-loop run that floods deliberately small shard rings
// and proves the admission accounting exact (accepted + shed + rejected ==
// submitted, client-side tallies == server counters).
//
// Self-contained and cold-cache friendly: the served network is a synthetic
// student on the Van der Pol plant with an LQR fallback, so no trained
// artifacts are needed.  Reported per configuration: QPS (total and
// per-dispatcher), p50/p99/p999 latency, shed rate, and the
// primary/fallback/batch counters.  Answers are bitwise independent of the
// configuration (the serving determinism contract), so the sweep measures
// cost only.
//
// Like bench_micro, every run leaves a machine-readable trajectory point
// (default BENCH_serve.json, --out=<path>) that the Release CI job uploads
// as an artifact.  NOTE on scaling curves: QPS-vs-dispatchers wall-clock
// curves are meaningful on multi-core hardware only — on a single-core
// host the dispatcher fan-out is confirmed by the exact per-shard counters
// and CPU-time splits, not by wall-clock speedup.
//
// Usage: bench_serve [--requests N] [--clients C] [--steps T]
//                    [--flood N] [--out=PATH]
//        bench_serve --smoke        (tiny counts; the CI Release smoke run)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "nn/mlp.h"
#include "serve/controller_server.h"
#include "serve/metrics.h"
#include "serve/safety_monitor.h"
#include "sys/vanderpol.h"
#include "util/csv.h"
#include "util/paths.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace cocktail;

struct Options {
  int requests = 20000;   ///< open-loop requests per configuration.
  int clients = 8;        ///< concurrent submitter threads.
  int steps = 200;        ///< closed-loop plant steps per client.
  long flood = 1000000;   ///< simulated clients in the admission-flood run.
};

struct SweepPoint {
  std::size_t max_batch;
  int num_workers;
  long linger_us;
  std::size_t num_dispatchers;
  std::size_t num_shards;
};

struct Measured {
  double seconds = 0.0;
  serve::ServeCounters counters;
  std::vector<double> latencies_us;  ///< sorted after measure().

  [[nodiscard]] double qps() const {
    return seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds
                         : 0.0;
  }
  [[nodiscard]] double percentile(double p) const {
    if (latencies_us.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[rank];
  }
};

/// One row of BENCH_serve.json: a sweep point (or the flood run) with its
/// measured throughput/latency/admission numbers.
struct TrajectoryRow {
  std::string name;
  std::string mode;
  SweepPoint point{};
  long requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  serve::ServeCounters counters;

  [[nodiscard]] double qps_per_dispatcher() const {
    return point.num_dispatchers > 0
               ? qps / static_cast<double>(point.num_dispatchers)
               : qps;
  }
  [[nodiscard]] double shed_rate() const {
    const double submitted = static_cast<double>(
        counters.accepted + counters.shed + counters.rejected);
    return submitted > 0.0 ? static_cast<double>(counters.shed) / submitted
                           : 0.0;
  }
};

serve::ServeConfig make_config(const SweepPoint& point) {
  serve::ServeConfig config;
  config.max_batch = point.max_batch;
  config.num_workers = point.num_workers;
  config.max_wait = std::chrono::microseconds(point.linger_us);
  config.num_dispatchers = point.num_dispatchers;
  config.num_shards = point.num_shards;
  return config;
}

std::shared_ptr<const ctrl::NnController> make_student() {
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 7);
  return std::make_shared<const ctrl::NnController>(std::move(net),
                                                    la::Vec{1.0}, "k*");
}

void register_vdp(serve::ControllerServer& server, const sys::VanDerPol& vdp) {
  server.register_controller(
      "vdp", make_student(),
      std::make_shared<ctrl::LqrController>(
          ctrl::LqrController::synthesize(vdp, 1.0, 0.5)),
      serve::SafetyMonitor::inside_box(vdp.safe_region(), 0.05));
}

/// Request flood: `clients` threads submit pre-sampled states as fast as
/// the server accepts them; latency is submit()→get() per request.
Measured open_loop(const Options& options, const SweepPoint& point) {
  const sys::VanDerPol vdp;
  serve::ControllerServer server(make_config(point));
  register_vdp(server, vdp);

  util::Rng rng(424242);
  std::vector<la::Vec> states;
  states.reserve(static_cast<std::size_t>(options.requests));
  const sys::Box sampling = vdp.sampling_region();
  for (int k = 0; k < options.requests; ++k)
    states.push_back(sampling.sample(rng));

  Measured measured;
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(options.clients));
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      auto& latencies = per_client[static_cast<std::size_t>(c)];
      for (std::size_t i = static_cast<std::size_t>(c); i < states.size();
           i += static_cast<std::size_t>(options.clients)) {
        const auto start = std::chrono::steady_clock::now();
        la::Vec action = server.submit("vdp", states[i]).get();
        const auto stop = std::chrono::steady_clock::now();
        (void)action;
        latencies.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  measured.seconds = timer.seconds();
  measured.counters = server.counters("vdp");
  for (auto& latencies : per_client)
    measured.latencies_us.insert(measured.latencies_us.end(),
                                 latencies.begin(), latencies.end());
  std::sort(measured.latencies_us.begin(), measured.latencies_us.end());
  return measured;
}

/// Plant-in-the-loop: each client simulates its own Van der Pol episode and
/// must wait for the served action before it can step — the serving pattern
/// where latency, not throughput, gates control quality.
Measured closed_loop(const Options& options, const SweepPoint& point) {
  const sys::VanDerPol vdp;
  serve::ControllerServer server(make_config(point));
  register_vdp(server, vdp);

  Measured measured;
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(options.clients));
  util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      util::Rng rng(7000 + static_cast<std::uint64_t>(c));
      la::Vec s = vdp.sample_initial_state(rng);
      auto& latencies = per_client[static_cast<std::size_t>(c)];
      for (int t = 0; t < options.steps; ++t) {
        const auto start = std::chrono::steady_clock::now();
        const la::Vec u = server.submit("vdp", s).get();
        const auto stop = std::chrono::steady_clock::now();
        latencies.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
        s = vdp.step(s, vdp.clip_control(u), vdp.sample_disturbance(rng));
        if (!vdp.is_safe(s)) s = vdp.sample_initial_state(rng);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  measured.seconds = timer.seconds();
  measured.counters = server.counters("vdp");
  for (auto& latencies : per_client)
    measured.latencies_us.insert(measured.latencies_us.end(),
                                 latencies.begin(), latencies.end());
  std::sort(measured.latencies_us.begin(), measured.latencies_us.end());
  return measured;
}

/// The simulated million-client admission flood: `flood` logical clients
/// (one request each) are multiplexed over `clients` submitter threads
/// against deliberately tiny shard rings, so load shedding genuinely
/// happens.  Each thread keeps a bounded window of outstanding futures —
/// submission never waits on an answer, which is what makes the run
/// open-loop — and tallies answered/shed client-side.  Returns false (and
/// prints why) if the admission accounting is not exact: every submission
/// must land in exactly one of {accepted, shed, rejected}, the client-side
/// tallies must equal the server counters, and the per-shard breakdown must
/// sum to the totals.  Latency quantiles come from the server's own
/// MetricsRegistry histogram (accept→answer), not client buffers — a
/// million latencies would be measurement ballast.
bool admission_flood(const Options& options, TrajectoryRow& row) {
  const sys::VanDerPol vdp;
  serve::ServeConfig config;
  config.max_batch = 32;
  config.max_wait = std::chrono::microseconds(0);
  config.num_workers = 1;
  config.num_dispatchers = 2;
  config.num_shards = 4;
  config.shard_capacity = 64;  // tiny rings: the flood must shed.
  serve::ControllerServer server(config);
  register_vdp(server, vdp);

  const long total = options.flood;
  const int threads_n = options.clients;
  constexpr std::size_t kWindow = 256;  // outstanding futures per thread.

  std::vector<long> answered(static_cast<std::size_t>(threads_n), 0);
  std::vector<long> shed(static_cast<std::size_t>(threads_n), 0);
  std::vector<long> submitted(static_cast<std::size_t>(threads_n), 0);

  util::Stopwatch timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < threads_n; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t tc = static_cast<std::size_t>(c);
      // Each logical client submits one state; states cycle a small
      // per-thread pool so the run costs RNG time once, not per request.
      util::Rng rng(990000 + static_cast<std::uint64_t>(c));
      const sys::Box sampling = vdp.sampling_region();
      std::vector<la::Vec> states;
      for (int k = 0; k < 64; ++k) states.push_back(sampling.sample(rng));

      const long share = total / threads_n +
                         (c < static_cast<int>(total % threads_n) ? 1 : 0);
      std::vector<std::future<la::Vec>> window;
      window.reserve(kWindow);
      const auto settle = [&] {
        for (auto& future : window) {
          try {
            (void)future.get();
            ++answered[tc];
          } catch (const serve::RejectedError&) {
            ++shed[tc];
          }
        }
        window.clear();
      };
      for (long k = 0; k < share; ++k) {
        window.push_back(
            server.submit("vdp", states[static_cast<std::size_t>(k) % 64]));
        ++submitted[tc];
        if (window.size() == kWindow) settle();
      }
      settle();
    });
  }
  for (auto& thread : threads) thread.join();
  server.drain();
  row.seconds = timer.seconds();

  long client_answered = 0, client_shed = 0, client_submitted = 0;
  for (int c = 0; c < threads_n; ++c) {
    client_answered += answered[static_cast<std::size_t>(c)];
    client_shed += shed[static_cast<std::size_t>(c)];
    client_submitted += submitted[static_cast<std::size_t>(c)];
  }
  row.counters = server.counters("vdp");
  row.requests = client_submitted;
  row.qps = row.seconds > 0.0
                ? static_cast<double>(client_answered) / row.seconds
                : 0.0;
  row.point = {config.max_batch, config.num_workers, 0,
               config.num_dispatchers, config.num_shards};

  // Accept→answer latency from the serving tier's own metrics registry.
  const serve::MetricsSnapshot snap = server.metrics().snapshot();
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.vdp.latency_us") {
      row.p50_us = h.q.p50_us;
      row.p99_us = h.q.p99_us;
      row.p999_us = h.q.p999_us;
    }
  }

  // Exactness: the whole point of the run.
  bool exact = true;
  const auto check = [&exact](bool ok, const char* what, long lhs, long rhs) {
    if (!ok) {
      std::fprintf(stderr, "admission-flood accounting VIOLATION: %s (%ld vs %ld)\n",
                   what, lhs, rhs);
      exact = false;
    }
  };
  const long server_submitted = static_cast<long>(
      row.counters.accepted + row.counters.shed + row.counters.rejected);
  check(client_submitted == total, "submitted == requested flood",
        client_submitted, total);
  check(server_submitted == client_submitted,
        "accepted + shed + rejected == submitted", server_submitted,
        client_submitted);
  check(static_cast<long>(row.counters.accepted) == client_answered,
        "server accepted == client answered",
        static_cast<long>(row.counters.accepted), client_answered);
  check(static_cast<long>(row.counters.shed) == client_shed,
        "server shed == client shed", static_cast<long>(row.counters.shed),
        client_shed);
  check(row.counters.rejected == 0, "no shutdown rejections before stop()",
        static_cast<long>(row.counters.rejected), 0);
  check(static_cast<long>(row.counters.primary + row.counters.fallback) ==
            client_answered,
        "primary + fallback == answered",
        static_cast<long>(row.counters.primary + row.counters.fallback),
        client_answered);
  long by_shard_accepted = 0, by_shard_shed = 0;
  for (const auto& shard : row.counters.shards) {
    by_shard_accepted += static_cast<long>(shard.accepted);
    by_shard_shed += static_cast<long>(shard.shed);
  }
  check(by_shard_accepted == static_cast<long>(row.counters.accepted),
        "per-shard accepted sums to total", by_shard_accepted,
        static_cast<long>(row.counters.accepted));
  check(by_shard_shed == static_cast<long>(row.counters.shed),
        "per-shard shed sums to total", by_shard_shed,
        static_cast<long>(row.counters.shed));
  return exact;
}

std::string point_name(const char* mode, const SweepPoint& point) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/b%zu_w%d_l%ld_d%zu_s%zu", mode,
                point.max_batch, point.num_workers, point.linger_us,
                point.num_dispatchers, point.num_shards);
  return buf;
}

TrajectoryRow report(util::CsvWriter& csv, const char* mode,
                     const SweepPoint& point, const Measured& measured) {
  TrajectoryRow row;
  row.name = point_name(mode, point);
  row.mode = mode;
  row.point = point;
  row.requests = static_cast<long>(measured.latencies_us.size());
  row.seconds = measured.seconds;
  row.qps = measured.qps();
  row.p50_us = measured.percentile(0.50);
  row.p99_us = measured.percentile(0.99);
  row.p999_us = measured.percentile(0.999);
  row.counters = measured.counters;
  std::printf("%-11s %6zu %7d %8ld %5zu %6zu %11.0f %11.0f %9.1f %9.1f %9.1f %7llu %8llu\n",
              mode, point.max_batch, point.num_workers, point.linger_us,
              point.num_dispatchers, point.num_shards, row.qps,
              row.qps_per_dispatcher(), row.p50_us, row.p99_us, row.p999_us,
              static_cast<unsigned long long>(row.counters.fallback),
              static_cast<unsigned long long>(row.counters.batches));
  csv.row_text({mode, std::to_string(point.max_batch),
                std::to_string(point.num_workers),
                std::to_string(point.linger_us),
                std::to_string(point.num_dispatchers),
                std::to_string(point.num_shards),
                util::format_number(row.qps),
                util::format_number(row.qps_per_dispatcher()),
                util::format_number(row.p50_us),
                util::format_number(row.p99_us),
                util::format_number(row.p999_us),
                util::format_number(row.shed_rate()),
                std::to_string(row.counters.fallback),
                std::to_string(row.counters.batches)});
  return row;
}

void write_json(const std::vector<TrajectoryRow>& rows, bool smoke,
                bool flood_exact, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_serve: cannot open " << path << " for writing\n";
    return;
  }
  out.precision(12);
  out << "{\n  \"bench\": \"bench_serve\",\n  \"schema_version\": 1,\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrajectoryRow& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", \"mode\": \"" << row.mode
        << "\", \"max_batch\": " << row.point.max_batch
        << ", \"num_workers\": " << row.point.num_workers
        << ", \"linger_us\": " << row.point.linger_us
        << ", \"num_dispatchers\": " << row.point.num_dispatchers
        << ", \"num_shards\": " << row.point.num_shards
        << ", \"requests\": " << row.requests
        << ", \"seconds\": " << row.seconds
        << ", \"qps\": " << row.qps
        << ", \"qps_per_dispatcher\": " << row.qps_per_dispatcher()
        << ", \"p50_us\": " << row.p50_us
        << ", \"p99_us\": " << row.p99_us
        << ", \"p999_us\": " << row.p999_us
        << ", \"shed_rate\": " << row.shed_rate()
        << ", \"accepted\": " << row.counters.accepted
        << ", \"shed\": " << row.counters.shed
        << ", \"rejected\": " << row.counters.rejected
        << ", \"fallback\": " << row.counters.fallback
        << ", \"batches\": " << row.counters.batches
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"derived\": {";
  // Headline numbers: best open/closed-loop QPS over the sweep, the flood
  // run's shed rate, and whether its exact-accounting invariant held
  // (1 = exact; the process also exits nonzero when it does not).
  double open_peak = 0.0, closed_peak = 0.0;
  const TrajectoryRow* flood = nullptr;
  for (const TrajectoryRow& row : rows) {
    if (row.mode == "open-loop") open_peak = std::max(open_peak, row.qps);
    if (row.mode == "closed-loop") closed_peak = std::max(closed_peak, row.qps);
    if (row.mode == "admission-flood") flood = &row;
  }
  out << "\n    \"open_loop_peak_qps\": " << open_peak
      << ",\n    \"closed_loop_peak_qps\": " << closed_peak;
  if (flood != nullptr) {
    out << ",\n    \"flood_shed_rate\": " << flood->shed_rate()
        << ",\n    \"flood_qps\": " << flood->qps
        << ",\n    \"flood_exact_accounting\": " << (flood_exact ? "true" : "false");
  }
  out << "\n  }\n}\n";
  std::cout << "bench_serve: wrote trajectory point to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_long = [&](long fallback) {
      return i + 1 < argc ? std::atol(argv[++i]) : fallback;
    };
    if (arg == "--smoke") {
      // Tiny counts for the CI Release smoke run: exercises every sweep
      // point (and the flood accounting) end to end in seconds.
      smoke = true;
      options.requests = 200;
      options.clients = 4;
      options.steps = 20;
      options.flood = 20000;
    } else if (arg == "--requests") {
      options.requests = static_cast<int>(next_long(options.requests));
    } else if (arg == "--clients") {
      options.clients = static_cast<int>(next_long(options.clients));
    } else if (arg == "--steps") {
      options.steps = static_cast<int>(next_long(options.steps));
    } else if (arg == "--flood") {
      options.flood = next_long(options.flood);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--requests N] [--clients C] "
                   "[--steps T] [--flood N] [--out=PATH] [--smoke]\n");
      return 2;
    }
  }
  if (options.requests <= 0 || options.clients <= 0 || options.steps <= 0 ||
      options.flood <= 0) {
    std::fprintf(stderr, "bench_serve: counts must be positive\n");
    return 2;
  }

  std::printf(
      "Sharded controller serving: micro-batched inference with "
      "certified-safety fallback\n"
      "open-loop: %d requests / %d clients; closed-loop: %d clients x %d "
      "steps; flood: %ld simulated clients\n"
      "(wall-clock dispatcher scaling needs multi-core hardware; on one "
      "core the sweep measures overhead, not parallelism)\n\n",
      options.requests, options.clients, options.clients, options.steps,
      options.flood);
  std::printf("%-11s %6s %7s %8s %5s %6s %11s %11s %9s %9s %9s %7s %8s\n",
              "mode", "batch", "workers", "linger", "disp", "shards", "qps",
              "qps/disp", "p50_us", "p99_us", "p999_us", "fallbk", "batches");

  util::CsvWriter csv(util::output_dir() + "/bench_serve.csv",
                      {"mode", "max_batch", "num_workers", "linger_us",
                       "num_dispatchers", "num_shards", "qps",
                       "qps_per_dispatcher", "p50_us", "p99_us", "p999_us",
                       "shed_rate", "fallback", "batches"});

  // The sweep crosses batching shapes with the dispatcher/shard grid: the
  // single-dispatcher points reproduce the PR 5 tier as the baseline, the
  // sharded points exercise multi-dispatcher batch formation.
  const std::vector<SweepPoint> sweep = {
      {1, 1, 0, 1, 1},    {8, 1, 200, 1, 1},  {32, 1, 200, 1, 1},
      {32, 2, 200, 1, 1}, {32, 2, 200, 2, 2}, {32, 4, 200, 2, 4},
      {32, 4, 200, 4, 8},
  };
  std::vector<TrajectoryRow> rows;
  for (const SweepPoint& point : sweep) {
    rows.push_back(report(csv, "open-loop", point, open_loop(options, point)));
    rows.push_back(
        report(csv, "closed-loop", point, closed_loop(options, point)));
  }

  // The admission flood: open-loop, small rings, exact accounting or bust.
  TrajectoryRow flood_row;
  flood_row.name = "admission-flood/b32_w1_l0_d2_s4";
  flood_row.mode = "admission-flood";
  const bool flood_exact = admission_flood(options, flood_row);
  std::printf(
      "\n%-11s %ld simulated clients in %.2fs: %.0f answered/s, shed rate "
      "%.4f, p50 %.1fus p99 %.1fus p999 %.1fus — accounting %s\n",
      "flood", flood_row.requests, flood_row.seconds, flood_row.qps,
      flood_row.shed_rate(), flood_row.p50_us, flood_row.p99_us,
      flood_row.p999_us, flood_exact ? "EXACT" : "VIOLATED");
  csv.row_text({"admission-flood", "32", "1", "0", "2", "4",
                util::format_number(flood_row.qps),
                util::format_number(flood_row.qps_per_dispatcher()),
                util::format_number(flood_row.p50_us),
                util::format_number(flood_row.p99_us),
                util::format_number(flood_row.p999_us),
                util::format_number(flood_row.shed_rate()),
                std::to_string(flood_row.counters.fallback),
                std::to_string(flood_row.counters.batches)});
  rows.push_back(flood_row);

  write_json(rows, smoke, flood_exact, out_path);
  std::printf("CSV written to %s\n",
              (util::output_dir() + "/bench_serve.csv").c_str());
  return flood_exact ? 0 : 1;
}
