// Ablation D (paper Remark 1): the adaptive mixing can also be learned
// with DDPG instead of PPO — "other RL methods such as DDPG can also
// achieve significant improvement", even though the global-convergence
// argument only covers PPO.
#include <cstdio>

#include "bench_common.h"
#include "core/mixing.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: mixing learner (PPO vs DDPG)",
                      "paper Remark 1");

  const auto artifacts = bench::load_pipeline("vanderpol");

  util::CsvWriter csv(util::output_dir() + "/ablation_rl.csv",
                      {"learner", "clean_sr_pct", "clean_energy"});
  std::printf("\n%-14s %10s %12s\n", "learner", "Sr (%)", "e");

  auto report = [&](const std::string& label, const ctrl::Controller& c) {
    const auto clean = bench::evaluate_clean(*artifacts.system, c);
    std::printf("%-14s %10.1f %12s\n", label.c_str(),
                100.0 * clean.safe_rate,
                core::format_energy(clean.mean_energy).c_str());
    csv.row_text({label, util::format_number(100.0 * clean.safe_rate),
                  util::format_number(clean.mean_energy)});
  };

  // Single experts for reference.
  for (std::size_t i = 0; i < artifacts.experts.size(); ++i)
    report("expert k" + std::to_string(i + 1), *artifacts.experts[i]);

  // PPO mixing: the cached AW from the main pipeline.
  report("mixing (PPO)", *artifacts.mixed);

  // DDPG mixing, trained here.
  core::DdpgMixingConfig config;
  config.ddpg.episodes = 250;
  config.ddpg.actor_hidden = {64, 64};
  config.ddpg.critic_hidden = {64, 64};
  config.ddpg.seed = 5150;
  config.reward.observation_noise =
      attack::perturbation_bound(*artifacts.system, 0.05);
  const auto ddpg_result = core::train_adaptive_mixing_ddpg(
      artifacts.system, artifacts.experts, config);
  report("mixing (DDPG)", *ddpg_result.controller);

  std::printf("\nBoth learners should improve the safe control rate over "
              "the single experts (Remark 1).\n");
  std::printf("CSV written to %s\n",
              (util::output_dir() + "/ablation_rl.csv").c_str());
  return 0;
}
