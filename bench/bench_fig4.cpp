// Fig 4 reproduction: reachable set of the 3D system within the first 15
// control steps from the corner initial set
//   s ∈ [-0.11, -0.105] × [0.205, 0.21] × [0.1, 0.11].
//
// Paper result: κ* verifies Safe within minutes; κD crashes with a memory
// segmentation fault after 12 reachable-set computations because its large
// Lipschitz constant blows up the partition count.  Our substrate bounds
// that blow-up with an explicit verification budget, so κD's failure is
// reported cleanly instead of crashing — same mechanism, observable result.
#include <cstdio>

#include "bench_common.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"
#include "verify/reach.h"

namespace {

cocktail::verify::ReachConfig fig4_config() {
  cocktail::verify::ReachConfig config;
  config.steps = 15;
  // Tight eps: the Bernstein slack enters the flowpipe as ±eps on u every
  // step (tau * 2 * eps of state growth), so a loose enclosure inflates the
  // reachable set linearly in time even under a contracting controller.
  config.abstraction.epsilon_target = 0.1;
  config.abstraction.max_degree = 10;
  config.abstraction.max_partition_depth = 10;
  config.max_box_width = 0.02;
  config.merge_threshold = 2048;
  // The budget plays the role of the paper's memory limit (the paper's kD
  // run died of a segmentation fault at the equivalent point).
  config.budget.max_nn_evaluations = 40'000'000;
  config.budget.max_partitions = 300'000;
  return config;
}

}  // namespace

int main() {
  using namespace cocktail;
  bench::print_banner("Fig 4",
                      "paper Fig 4 (3D-system reachability, k* vs kD)");

  const auto artifacts = bench::load_pipeline("threed");
  const verify::IBox initial =
      verify::make_box({-0.11, 0.205, 0.1}, {-0.105, 0.21, 0.11});

  struct Subject {
    std::string label;
    ctrl::ControllerPtr controller;
    std::string csv_tag;
  };
  const Subject subjects[] = {
      {"k*", artifacts.robust_student, "kstar"},
      {"kD", artifacts.direct_student, "kD"}};

  for (const auto& subject : subjects) {
    std::printf("\nreachability for %s (L = %.2f):\n", subject.label.c_str(),
                subject.controller->lipschitz_bound());
    const verify::ReachabilityAnalyzer analyzer(
        artifacts.system, *subject.controller, fig4_config());
    const auto result = analyzer.analyze(initial);
    if (!result.completed) {
      std::printf("  -> verification FAILED (budget exhausted — the "
                  "paper's kD segfaulted here): %s\n",
                  result.failure.c_str());
      std::printf("  -> consumed %ld NN evals / %ld partitions in %.2f s\n",
                  result.nn_evaluations, result.partitions, result.seconds);
      continue;
    }
    std::printf("  -> verified %s in %.2f s (%ld NN evals, %ld partitions)\n",
                result.safe ? "SAFE" : "UNSAFE", result.seconds,
                result.nn_evaluations, result.partitions);
    const std::string path =
        util::output_dir() + "/fig4_reach_" + subject.csv_tag + ".csv";
    util::CsvWriter csv(path, {"step", "x_lo", "x_hi", "y_lo", "y_hi"});
    for (std::size_t t = 0; t < result.layers.size(); ++t)
      for (const auto& box : result.layers[t])
        csv.row({static_cast<double>(t), box[0].lo(), box[0].hi(),
                 box[1].lo(), box[1].hi()});
    std::printf("  -> (x, y) flowpipe written to %s\n", path.c_str());
  }
  return 0;
}
