// Micro-benchmarks of the substrate kernels (google-benchmark): the
// blocked LA backend, NN inference/backprop, interval dynamics, Bernstein
// abstraction, FGSM, and a full closed-loop rollout step.  These bound the
// cost models behind the training/verification budgets quoted in DESIGN.md.
//
// bench_micro is also the repo's TRACKED PERF TIER: it provides its own
// main(), understands
//   --smoke       tiny measurement times + only the tracked benchmarks
//                 (GEMM / forward_batch / distill / PPO update /
//                 certified-lookup / reach fan-out) — the mode Release CI
//                 runs every PR;
//   --out=<path>  where to write the JSON trajectory point
//                 (default BENCH_micro.json in the working directory);
// and emits one BENCH_micro.json per run: every benchmark's per-iteration
// time plus GFLOP/s where a flop count is defined, and the headline
// GEMM-vs-naive speedups.  Each PR's JSON is a point on the perf
// trajectory; a shrinking speedup is a regression with a number attached.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "attack/fgsm.h"
#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "core/distiller.h"
#include "core/rollout.h"
#include "la/matrix.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "point_mass_envs.h"
#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "serve/safety_monitor.h"
#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"
#include "util/thread_pool.h"
#include "verify/bernstein.h"
#include "verify/interval_dynamics.h"
#include "verify/nn_abstraction.h"
#include "verify/reach.h"

namespace {

using namespace cocktail;

/// The pre-PR-6 `Matrix::matmul` triple loop, kept verbatim as the perf
/// baseline the blocked backend is measured against (including its
/// NaN-dropping `aik == 0.0` skip — never taken on the random operands
/// below, but part of the loop being replaced).
la::Matrix naive_matmul_baseline(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = &b.data()[k * b.cols()];
      double* orow = &out.data()[i * b.cols()];
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

la::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  la::Matrix m(rows, cols);
  util::Rng rng(seed);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

void set_gemm_flops(benchmark::State& state, std::size_t n) {
  state.counters["FLOPS"] =
      benchmark::Counter(2.0 * static_cast<double>(n) * static_cast<double>(n) *
                             static_cast<double>(n),
                         benchmark::Counter::kIsIterationInvariantRate);
}

// Square n x n x n GEMM on the pre-PR naive loop (Arg = n).  The
// denominator of the tracked gemm_speedup_* trajectory numbers.
void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, n, 101);
  const la::Matrix b = random_matrix(n, n, 102);
  for (auto _ : state) benchmark::DoNotOptimize(naive_matmul_baseline(a, b));
  set_gemm_flops(state, n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

// Square n x n x n GEMM on the deterministic blocked/SIMD backend
// (Matrix::matmul -> la::kernels::gemm_nn, includes the B^T pack).
void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, n, 101);
  const la::Matrix b = random_matrix(n, n, 102);
  for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b));
  set_gemm_flops(state, n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Square n x n x n NT GEMM (Matrix::matmul_nt -> la::kernels::gemm_nt) —
// the exact kernel under Mlp::forward_batch, no pack.
void BM_GemmNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, n, 101);
  const la::Matrix b = random_matrix(n, n, 102);
  for (auto _ : state) benchmark::DoNotOptimize(a.matmul_nt(b));
  set_gemm_flops(state, n);
}
BENCHMARK(BM_GemmNt)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {width, width}, 1,
                                    nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MlpForward)->Arg(24)->Arg(64)->Arg(128);

// Layer-wise GEMM batched inference (the serving runtime's hot kernel) vs
// batch size (Arg).  Items/sec is states/sec; compare against BM_MlpForward
// to read the batching win per sample.
void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {64, 64}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  la::Matrix x(batch, 4);
  util::Rng rng(3);
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward_batch(x));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  // GEMM flops only (2*K per MAC over the 4->64->64->1 layers); the bias/
  // activation work is negligible at these widths.
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(batch) * (4.0 * 64 + 64.0 * 64 + 64.0 * 1),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_MlpBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {width, width}, 1,
                                    nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  const la::Vec target = {0.5};
  nn::Gradients grads = net.zero_gradients();
  for (auto _ : state) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward(x, ws);
    benchmark::DoNotOptimize(
        net.backward(ws, nn::mse_gradient(y, target), grads));
  }
}
BENCHMARK(BM_MlpBackward)->Arg(24)->Arg(64);

void BM_MlpInputGradient(benchmark::State& state) {
  const nn::Mlp net = nn::Mlp::make(4, {64, 64}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(net.input_gradient(x, {1.0}));
}
BENCHMARK(BM_MlpInputGradient);

void BM_VanDerPolStep(benchmark::State& state) {
  const sys::VanDerPol system;
  la::Vec s = {0.5, -0.5};
  const la::Vec u = {1.0};
  const la::Vec w = {0.01};
  for (auto _ : state) {
    s = system.step(s, u, w);
    benchmark::DoNotOptimize(s);
    s = {0.5, -0.5};
  }
}
BENCHMARK(BM_VanDerPolStep);

void BM_CartPoleIntervalStep(benchmark::State& state) {
  const sys::CartPole system;
  const auto dynamics = verify::make_interval_dynamics(system);
  const verify::IBox box = verify::make_box({-0.1, -0.1, -0.05, -0.1},
                                            {0.1, 0.1, 0.05, 0.1});
  const verify::IBox u = {verify::Interval(-1.0, 1.0)};
  for (auto _ : state) benchmark::DoNotOptimize(dynamics->step(box, u));
}
BENCHMARK(BM_CartPoleIntervalStep);

void BM_BernsteinFit(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const verify::IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  for (auto _ : state)
    benchmark::DoNotOptimize(verify::BernsteinPoly::fit(
        [&](const la::Vec& x) { return net.forward(x)[0]; }, box,
        {degree, degree}));
}
BENCHMARK(BM_BernsteinFit)->Arg(2)->Arg(4)->Arg(8);

void BM_NnAbstractionEnclose(benchmark::State& state) {
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  verify::AbstractionConfig config;
  config.epsilon_target = 0.5;
  const verify::NnAbstraction abstraction(controller, config);
  const verify::IBox box = verify::make_box({-0.1, -0.1}, {0.1, 0.1});
  const verify::IBox u_bounds = {verify::Interval(-20.0, 20.0)};
  for (auto _ : state) {
    verify::VerificationBudget budget;
    benchmark::DoNotOptimize(abstraction.enclose(box, u_bounds, budget));
  }
}
BENCHMARK(BM_NnAbstractionEnclose);

void BM_FgsmPerturb(benchmark::State& state) {
  nn::Mlp net = nn::Mlp::make(2, {24, 24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const attack::FgsmAttack fgsm({0.2, 0.2});
  util::Rng rng(1);
  const la::Vec s = {0.3, -0.3};
  for (auto _ : state)
    benchmark::DoNotOptimize(fgsm.perturb(s, controller, rng));
}
BENCHMARK(BM_FgsmPerturb);

void BM_ClosedLoopRollout(benchmark::State& state) {
  const auto system = std::make_shared<sys::VanDerPol>();
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  util::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::rollout(*system, controller, {0.5, 0.5}, nullptr, rng));
}
BENCHMARK(BM_ClosedLoopRollout);

// Scaling of the batched rollout engine with worker count (Arg).  Arg 1 is
// the serial baseline; speedup(Arg k) = time(1) / time(k).  The workload is
// the standard evaluation grid on the oscillator.  The pool is constructed
// outside the timed loop so the measurement is rollout throughput, not
// thread spawn/join cost.
void BM_BatchRollout(benchmark::State& state) {
  const auto system = std::make_shared<sys::VanDerPol>();
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const auto jobs = core::make_eval_jobs(*system, 256, 424242, nullptr);
  const int workers = static_cast<int>(state.range(0));
  core::BatchRolloutConfig config;
  std::unique_ptr<util::ThreadPool> pool;
  if (workers == 1) {
    config.num_workers = 1;  // pure serial baseline, no pool at all.
  } else {
    pool = std::make_unique<util::ThreadPool>(workers);
    config.pool = pool.get();
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::batch_rollout(*system, controller, jobs, config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchRollout)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the robust-distillation SGD (Algorithm 1 lines 12-14) with
// worker count (Arg; 1 = serial).  Per-sample forward/FGSM/backward fans
// across the pool with the fixed-order gradient reduction, so every Arg
// computes bitwise-identical student weights; only the wall-clock moves.
void BM_DistillSgd(benchmark::State& state) {
  const sys::VanDerPol system;
  const auto lqr = ctrl::LqrController::synthesize(system, 1.0, 0.5);
  core::DistillConfig config;
  config.teacher_rollouts = 4;
  config.uniform_samples = 1500;
  config.student_hidden = {48, 48};
  config.epochs = 2;
  config.adversarial_prob = 1.0;  // FGSM on every minibatch: the hot case.
  config.num_workers = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::distill(system, lqr, config, "bm"));
}
BENCHMARK(BM_DistillSgd)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the reachability frontier sweep with worker count (Arg; 1 =
// serial).  The frontier boxes of each step are abstracted in parallel
// against per-box budgets and merged in frontier order, so flowpipes and
// budget counters are identical across Args.
void BM_ReachSweep(benchmark::State& state) {
  auto system = std::make_shared<sys::ThreeD>();
  const auto lqr = ctrl::LqrController::synthesize(*system, 1.0, 8.0);
  const auto controller = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "lin"));
  verify::ReachConfig config;
  config.steps = 6;
  config.abstraction.epsilon_target = 0.08;
  config.max_box_width = 0.02;
  config.num_workers = static_cast<int>(state.range(0));
  const verify::ReachabilityAnalyzer analyzer(system, *controller, config);
  const verify::IBox initial =
      verify::make_box({-0.16, 0.15, 0.05}, {-0.05, 0.26, 0.16});
  for (auto _ : state) {
    const auto result = analyzer.analyze(initial);
    if (!result.completed) {
      state.SkipWithError(result.failure.c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ReachSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- certified-lookup crossover (tracked) ---------------------------------
//
// The serve-path margin check: "is every invariant cell overlapped by the
// ±margin box a member?"  Flat is the pre-PR-9 odometer over the window
// volume (kept verbatim below); Sfc is SafetyMonitor's CellSetTree descent.
// Arg = grid side n — on coarse grids the window holds a handful of cells
// and the flat walk wins on constant factors; as n grows the window volume
// grows quadratically while the tree cost tracks the window boundary, and
// the crossover lands in BENCH_micro.json as certified_lookup_speedup_<n>.

/// Disk-shaped member set on an n x n grid over [-1,1]^2: member iff the
/// cell center lies within radius 0.8.
verify::InvariantResult disk_invariant(int n) {
  verify::InvariantResult result;
  result.grid = {n, n};
  result.member.resize(static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(n));
  const double w = 2.0 / static_cast<double>(n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      const double x = -1.0 + (static_cast<double>(i) + 0.5) * w;
      const double y = -1.0 + (static_cast<double>(j) + 0.5) * w;
      result.member[static_cast<std::size_t>(j) * n + i] =
          x * x + y * y <= 0.8 * 0.8 ? 1 : 0;
    }
  result.completed = true;
  return result;
}

/// Deterministic probe states on a radius-0.5 ring: deep enough inside the
/// disk that the ±margin window is all-member, i.e. the walk never exits
/// early — the worst case both paths must pay in full.
std::vector<la::Vec> lookup_probes() {
  std::vector<la::Vec> probes;
  for (int i = 0; i < 64; ++i) {
    const double a = 2.0 * 3.14159265358979323846 * i / 64.0;
    probes.push_back({0.5 * std::cos(a), 0.5 * std::sin(a)});
  }
  return probes;
}

constexpr double kLookupMargin = 0.15;

/// The pre-PR-9 SafetyMonitor margin path, kept verbatim as the baseline
/// the CellSetTree descent is measured against: window quantization plus
/// the odometer over every overlapped cell.
bool flat_margin_certified_baseline(const verify::InvariantResult& inv,
                                    const cocktail::sys::Box& domain,
                                    double margin, const la::Vec& state) {
  std::vector<int> lo_k(state.size()), hi_k(state.size());
  for (std::size_t d = 0; d < state.size(); ++d) {
    const double lo = state[d] - margin;
    const double hi = state[d] + margin;
    if (lo < domain.lo[d] || hi > domain.hi[d]) return false;
    const double w = (domain.hi[d] - domain.lo[d]) /
                     static_cast<double>(inv.grid[d]);
    lo_k[d] = std::clamp(static_cast<int>(std::floor((lo - domain.lo[d]) / w)),
                         0, inv.grid[d] - 1);
    hi_k[d] = std::clamp(static_cast<int>(std::floor((hi - domain.lo[d]) / w)),
                         0, inv.grid[d] - 1);
  }
  std::vector<int> k = lo_k;
  for (;;) {
    std::size_t index = 0, stride = 1;
    for (std::size_t d = 0; d < k.size(); ++d) {
      index += static_cast<std::size_t>(k[d]) * stride;
      stride *= static_cast<std::size_t>(inv.grid[d]);
    }
    if (inv.member[index] == 0) return false;
    std::size_t d = 0;
    while (d < k.size() && ++k[d] > hi_k[d]) {
      k[d] = lo_k[d];
      ++d;
    }
    if (d == k.size()) break;
  }
  return true;
}

void BM_CertifiedLookupFlat(benchmark::State& state) {
  const auto inv = disk_invariant(static_cast<int>(state.range(0)));
  const sys::Box domain = sys::Box::symmetric(2, 1.0);
  const auto probes = lookup_probes();
  for (auto _ : state)
    for (const la::Vec& probe : probes)
      benchmark::DoNotOptimize(
          flat_margin_certified_baseline(inv, domain, kLookupMargin, probe));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_CertifiedLookupFlat)->Arg(16)->Arg(64)->Arg(256);

void BM_CertifiedLookupSfc(benchmark::State& state) {
  const auto monitor = serve::SafetyMonitor::inside_invariant(
      disk_invariant(static_cast<int>(state.range(0))),
      sys::Box::symmetric(2, 1.0), kLookupMargin);
  const auto probes = lookup_probes();
  for (auto _ : state)
    for (const la::Vec& probe : probes)
      benchmark::DoNotOptimize(monitor.certified(probe));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
}
BENCHMARK(BM_CertifiedLookupSfc)->Arg(16)->Arg(64)->Arg(256);

// The single-box serialization hole (tracked): one giant initial box whose
// ~216 sub-box enclosures are the whole first wave.  Arg 0 = fan-out
// disabled at 8 workers (the pre-PR-9 schedule: one work item, zero
// parallelism); Arg k>0 = fan-out enabled at k workers.  Results are
// bitwise identical across all rows — only the wall-clock moves.
void BM_ReachFrontierFanout(benchmark::State& state) {
  auto system = std::make_shared<sys::ThreeD>();
  const auto lqr = ctrl::LqrController::synthesize(*system, 1.0, 8.0);
  const auto controller = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "lin"));
  verify::ReachConfig config;
  config.steps = 1;
  config.abstraction.epsilon_target = 0.08;
  config.max_box_width = 0.05;
  config.subbox_fanout = state.range(0) != 0;
  config.num_workers =
      state.range(0) != 0 ? static_cast<int>(state.range(0)) : 8;
  const verify::ReachabilityAnalyzer analyzer(system, *controller, config);
  const verify::IBox initial =
      verify::make_box({-0.25, 0.05, -0.05}, {0.05, 0.35, 0.25});
  for (auto _ : state) {
    const auto result = analyzer.analyze(initial);
    if (!result.completed) {
      state.SkipWithError(result.failure.c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ReachFrontierFanout)->Arg(0)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the PPO minibatch updates with worker count (Arg; 1 = serial).
// Each iteration of the timed loop is one PPO training iteration — serial
// on-policy collection plus update_epochs passes of parallel per-sample
// gradient work (the hot path of the adaptive mixing learner).  Every Arg
// trains bitwise-identical networks; only the wall-clock moves.
void BM_PpoUpdate(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::PpoConfig config;
  config.policy_hidden = {64, 64};
  config.value_hidden = {64, 64};
  config.steps_per_iteration = 512;
  config.update_epochs = 6;
  config.minibatch = 64;
  config.num_workers = static_cast<int>(state.range(0));
  rl::PpoGaussian ppo(config);
  ppo.initialize(env);
  for (auto _ : state)
    benchmark::DoNotOptimize(ppo.run_iterations(env, 1));
}
BENCHMARK(BM_PpoUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the DDPG critic/actor minibatch passes with worker count
// (Arg; 1 = serial).  Each iteration runs one episode past warmup, i.e.
// max_episode_steps env steps each followed by a full parallel update
// (target pre-pass, critic regression, actor dQ/da).
void BM_DdpgUpdate(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::DdpgConfig config;
  config.actor_hidden = {64, 64};
  config.critic_hidden = {64, 64};
  config.batch_size = 64;
  config.warmup_steps = 64;  // replay fills during the first episodes.
  config.num_workers = static_cast<int>(state.range(0));
  rl::Ddpg ddpg(config);
  ddpg.initialize(env);
  (void)ddpg.run_episodes(env, 4);  // past warmup: every step updates.
  for (auto _ : state)
    benchmark::DoNotOptimize(ddpg.run_episodes(env, 1));
}
BENCHMARK(BM_DdpgUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of sharded PPO collection with the env-shard count (Arg; 1 = one
// env replica, serial).  Each timed iteration is one PPO training iteration
// with update_epochs = 0, i.e. almost pure collection: episode slots run in
// waves of Arg env clones on a dedicated Arg-worker pool.  Every Arg
// collects bitwise-identical batches (the slot decomposition is fixed);
// only the wall-clock moves.
void BM_PpoCollect(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::PpoConfig config;
  config.policy_hidden = {64, 64};
  config.value_hidden = {64, 64};
  config.steps_per_iteration = 2048;
  config.update_epochs = 0;  // isolate collection from the update passes.
  config.num_workers = static_cast<int>(state.range(0));
  config.num_env_shards = static_cast<int>(state.range(0));
  rl::PpoGaussian ppo(config);
  ppo.initialize(env);
  for (auto _ : state)
    benchmark::DoNotOptimize(ppo.run_iterations(env, 1));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          config.steps_per_iteration);
}
BENCHMARK(BM_PpoCollect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of DDPG's sharded warmup exploration with the env-shard count
// (Arg).  Each timed iteration consumes a fresh trainer's random-action
// warmup (the exploration phase that fans across env clones); the episode
// budget is sized to stay inside the warmup, so no learned-phase updates
// pollute the measurement.  As with BM_PpoCollect, every Arg produces
// bitwise-identical replay contents.
void BM_DdpgCollect(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::DdpgConfig config;
  config.actor_hidden = {64, 64};
  config.critic_hidden = {64, 64};
  config.batch_size = 64;
  config.warmup_steps = 2048;
  config.num_workers = static_cast<int>(state.range(0));
  config.num_env_shards = static_cast<int>(state.range(0));
  // 68 episodes * <= 30 steps stays at or under the 2048-step warmup.
  const int warmup_episodes = 68;
  for (auto _ : state) {
    state.PauseTiming();
    rl::Ddpg ddpg(config);
    ddpg.initialize(env);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ddpg.run_episodes(env, warmup_episodes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(warmup_episodes) * 30);
}
BENCHMARK(BM_DdpgCollect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- tracked perf tier: JSON trajectory output ----------------------------

/// One emitted row of BENCH_micro.json.
struct TrajectoryRow {
  std::string name;
  std::int64_t iterations = 0;
  double real_time_per_iter_s = 0.0;
  double cpu_time_per_iter_s = 0.0;
  double flops_per_s = -1.0;           // -1: no flop model for this bench.
  double items_per_second = -1.0;
};

/// ConsoleReporter that additionally captures every run for the JSON file.
class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      TrajectoryRow row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.real_time_per_iter_s = run.real_accumulated_time / iters;
      row.cpu_time_per_iter_s = run.cpu_accumulated_time / iters;
      const auto flops = run.counters.find("FLOPS");
      if (flops != run.counters.end()) row.flops_per_s = flops->second;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<TrajectoryRow>& rows() const {
    return rows_;
  }

 private:
  std::vector<TrajectoryRow> rows_;
};

double find_time(const std::vector<TrajectoryRow>& rows,
                 const std::string& name) {
  for (const auto& row : rows)
    if (row.name == name) return row.real_time_per_iter_s;
  return -1.0;
}

void write_json(const std::vector<TrajectoryRow>& rows, bool smoke,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_micro: cannot open " << path << " for writing\n";
    return;
  }
  out.precision(12);
  out << "{\n  \"bench\": \"bench_micro\",\n  \"schema_version\": 1,\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrajectoryRow& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", \"iterations\": "
        << row.iterations << ", \"real_time_per_iter_s\": "
        << row.real_time_per_iter_s << ", \"cpu_time_per_iter_s\": "
        << row.cpu_time_per_iter_s;
    if (row.flops_per_s >= 0.0)
      out << ", \"gflops\": " << row.flops_per_s * 1e-9;
    if (row.items_per_second >= 0.0)
      out << ", \"items_per_second\": " << row.items_per_second;
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"derived\": {";
  // Headline trajectory numbers: blocked-backend speedup over the pre-PR
  // naive loop, per square GEMM shape.
  bool first = true;
  for (const int n : {64, 128, 256}) {
    const std::string arg = "/" + std::to_string(n);
    const double naive = find_time(rows, "BM_GemmNaive" + arg);
    const double blocked = find_time(rows, "BM_Gemm" + arg);
    if (naive <= 0.0 || blocked <= 0.0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"gemm_speedup_" << n << "\": " << naive / blocked;
  }
  // Certificate-lookup crossover: SFC-tree speedup over the flat odometer
  // per grid side (values < 1 on coarse grids, > 1 once the window volume
  // dominates — the crossover itself is the tracked number).
  for (const int n : {16, 64, 256}) {
    const std::string arg = "/" + std::to_string(n);
    const double flat = find_time(rows, "BM_CertifiedLookupFlat" + arg);
    const double tree = find_time(rows, "BM_CertifiedLookupSfc" + arg);
    if (flat <= 0.0 || tree <= 0.0) continue;
    if (!first) out << ",";
    first = false;
    out << "\n    \"certified_lookup_speedup_" << n << "\": " << flat / tree;
  }
  // Single-giant-box frontier: fan-out speedup over the serialized
  // pre-fan-out schedule (Arg 0) at 8 workers.
  {
    const double serial = find_time(rows, "BM_ReachFrontierFanout/0/real_time");
    const double fanned = find_time(rows, "BM_ReachFrontierFanout/8/real_time");
    if (serial > 0.0 && fanned > 0.0) {
      if (!first) out << ",";
      first = false;
      out << "\n    \"reach_fanout_speedup_8\": " << serial / fanned;
    }
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  std::cout << "bench_micro: wrote perf trajectory point to " << path << "\n";
}

}  // namespace

// Custom main: strip the perf-tier flags, hand the rest to
// google-benchmark, and always leave a BENCH_micro.json behind.
int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_micro.json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else {
      args.push_back(argv[i]);
    }
  }
  // Smoke mode = the CI perf tier: only the tracked benchmarks, at a
  // measurement time that keeps the whole tier in seconds.  The numbers are
  // noisier than a full run but the same JSON shape lands in the artifact.
  std::string min_time = "--benchmark_min_time=0.01";
  std::string filter =
      "--benchmark_filter=BM_Gemm|BM_MlpForwardBatch|BM_DistillSgd/1|"
      "BM_PpoUpdate/1|BM_CertifiedLookup|BM_ReachFrontierFanout";
  if (smoke) {
    args.push_back(min_time.data());
    args.push_back(filter.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(reporter.rows(), smoke, out_path);
  benchmark::Shutdown();
  return 0;
}
