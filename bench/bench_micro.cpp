// Micro-benchmarks of the substrate kernels (google-benchmark): NN
// inference/backprop, interval dynamics, Bernstein abstraction, FGSM, and
// a full closed-loop rollout step.  These bound the cost models behind the
// training/verification budgets quoted in DESIGN.md.
#include <benchmark/benchmark.h>

#include <memory>

#include "attack/fgsm.h"
#include "control/lqr_controller.h"
#include "control/nn_controller.h"
#include "control/polynomial_controller.h"
#include "core/distiller.h"
#include "core/rollout.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "point_mass_envs.h"
#include "rl/ddpg.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "sys/cartpole.h"
#include "sys/threed.h"
#include "sys/vanderpol.h"
#include "util/thread_pool.h"
#include "verify/bernstein.h"
#include "verify/interval_dynamics.h"
#include "verify/nn_abstraction.h"
#include "verify/reach.h"

namespace {

using namespace cocktail;

void BM_MlpForward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {width, width}, 1,
                                    nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(x));
}
BENCHMARK(BM_MlpForward)->Arg(24)->Arg(64)->Arg(128);

// Layer-wise GEMM batched inference (the serving runtime's hot kernel) vs
// batch size (Arg).  Items/sec is states/sec; compare against BM_MlpForward
// to read the batching win per sample.
void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {64, 64}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  la::Matrix x(batch, 4);
  util::Rng rng(3);
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(net.forward_batch(x));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MlpForwardBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_MlpBackward(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(4, {width, width}, 1,
                                    nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  const la::Vec target = {0.5};
  nn::Gradients grads = net.zero_gradients();
  for (auto _ : state) {
    nn::Mlp::Workspace ws;
    const la::Vec y = net.forward(x, ws);
    benchmark::DoNotOptimize(
        net.backward(ws, nn::mse_gradient(y, target), grads));
  }
}
BENCHMARK(BM_MlpBackward)->Arg(24)->Arg(64);

void BM_MlpInputGradient(benchmark::State& state) {
  const nn::Mlp net = nn::Mlp::make(4, {64, 64}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const la::Vec x = {0.1, -0.2, 0.3, -0.4};
  for (auto _ : state)
    benchmark::DoNotOptimize(net.input_gradient(x, {1.0}));
}
BENCHMARK(BM_MlpInputGradient);

void BM_VanDerPolStep(benchmark::State& state) {
  const sys::VanDerPol system;
  la::Vec s = {0.5, -0.5};
  const la::Vec u = {1.0};
  const la::Vec w = {0.01};
  for (auto _ : state) {
    s = system.step(s, u, w);
    benchmark::DoNotOptimize(s);
    s = {0.5, -0.5};
  }
}
BENCHMARK(BM_VanDerPolStep);

void BM_CartPoleIntervalStep(benchmark::State& state) {
  const sys::CartPole system;
  const auto dynamics = verify::make_interval_dynamics(system);
  const verify::IBox box = verify::make_box({-0.1, -0.1, -0.05, -0.1},
                                            {0.1, 0.1, 0.05, 0.1});
  const verify::IBox u = {verify::Interval(-1.0, 1.0)};
  for (auto _ : state) benchmark::DoNotOptimize(dynamics->step(box, u));
}
BENCHMARK(BM_CartPoleIntervalStep);

void BM_BernsteinFit(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                                    nn::Activation::kIdentity, 1);
  const verify::IBox box = verify::make_box({-1.0, -1.0}, {1.0, 1.0});
  for (auto _ : state)
    benchmark::DoNotOptimize(verify::BernsteinPoly::fit(
        [&](const la::Vec& x) { return net.forward(x)[0]; }, box,
        {degree, degree}));
}
BENCHMARK(BM_BernsteinFit)->Arg(2)->Arg(4)->Arg(8);

void BM_NnAbstractionEnclose(benchmark::State& state) {
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  verify::AbstractionConfig config;
  config.epsilon_target = 0.5;
  const verify::NnAbstraction abstraction(controller, config);
  const verify::IBox box = verify::make_box({-0.1, -0.1}, {0.1, 0.1});
  const verify::IBox u_bounds = {verify::Interval(-20.0, 20.0)};
  for (auto _ : state) {
    verify::VerificationBudget budget;
    benchmark::DoNotOptimize(abstraction.enclose(box, u_bounds, budget));
  }
}
BENCHMARK(BM_NnAbstractionEnclose);

void BM_FgsmPerturb(benchmark::State& state) {
  nn::Mlp net = nn::Mlp::make(2, {24, 24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const attack::FgsmAttack fgsm({0.2, 0.2});
  util::Rng rng(1);
  const la::Vec s = {0.3, -0.3};
  for (auto _ : state)
    benchmark::DoNotOptimize(fgsm.perturb(s, controller, rng));
}
BENCHMARK(BM_FgsmPerturb);

void BM_ClosedLoopRollout(benchmark::State& state) {
  const auto system = std::make_shared<sys::VanDerPol>();
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  util::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::rollout(*system, controller, {0.5, 0.5}, nullptr, rng));
}
BENCHMARK(BM_ClosedLoopRollout);

// Scaling of the batched rollout engine with worker count (Arg).  Arg 1 is
// the serial baseline; speedup(Arg k) = time(1) / time(k).  The workload is
// the standard evaluation grid on the oscillator.  The pool is constructed
// outside the timed loop so the measurement is rollout throughput, not
// thread spawn/join cost.
void BM_BatchRollout(benchmark::State& state) {
  const auto system = std::make_shared<sys::VanDerPol>();
  nn::Mlp net = nn::Mlp::make(2, {24}, 1, nn::Activation::kTanh,
                              nn::Activation::kIdentity, 1);
  const ctrl::NnController controller(std::move(net), {1.0}, "k");
  const auto jobs = core::make_eval_jobs(*system, 256, 424242, nullptr);
  const int workers = static_cast<int>(state.range(0));
  core::BatchRolloutConfig config;
  std::unique_ptr<util::ThreadPool> pool;
  if (workers == 1) {
    config.num_workers = 1;  // pure serial baseline, no pool at all.
  } else {
    pool = std::make_unique<util::ThreadPool>(workers);
    config.pool = pool.get();
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::batch_rollout(*system, controller, jobs, config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchRollout)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the robust-distillation SGD (Algorithm 1 lines 12-14) with
// worker count (Arg; 1 = serial).  Per-sample forward/FGSM/backward fans
// across the pool with the fixed-order gradient reduction, so every Arg
// computes bitwise-identical student weights; only the wall-clock moves.
void BM_DistillSgd(benchmark::State& state) {
  const sys::VanDerPol system;
  const auto lqr = ctrl::LqrController::synthesize(system, 1.0, 0.5);
  core::DistillConfig config;
  config.teacher_rollouts = 4;
  config.uniform_samples = 1500;
  config.student_hidden = {48, 48};
  config.epochs = 2;
  config.adversarial_prob = 1.0;  // FGSM on every minibatch: the hot case.
  config.num_workers = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::distill(system, lqr, config, "bm"));
}
BENCHMARK(BM_DistillSgd)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the reachability frontier sweep with worker count (Arg; 1 =
// serial).  The frontier boxes of each step are abstracted in parallel
// against per-box budgets and merged in frontier order, so flowpipes and
// budget counters are identical across Args.
void BM_ReachSweep(benchmark::State& state) {
  auto system = std::make_shared<sys::ThreeD>();
  const auto lqr = ctrl::LqrController::synthesize(*system, 1.0, 8.0);
  const auto controller = std::make_shared<ctrl::PolynomialController>(
      ctrl::PolynomialController::linear_feedback(lqr.gain(), "lin"));
  verify::ReachConfig config;
  config.steps = 6;
  config.abstraction.epsilon_target = 0.08;
  config.max_box_width = 0.02;
  config.num_workers = static_cast<int>(state.range(0));
  const verify::ReachabilityAnalyzer analyzer(system, *controller, config);
  const verify::IBox initial =
      verify::make_box({-0.16, 0.15, 0.05}, {-0.05, 0.26, 0.16});
  for (auto _ : state) {
    const auto result = analyzer.analyze(initial);
    if (!result.completed) {
      state.SkipWithError(result.failure.c_str());
      break;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ReachSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the PPO minibatch updates with worker count (Arg; 1 = serial).
// Each iteration of the timed loop is one PPO training iteration — serial
// on-policy collection plus update_epochs passes of parallel per-sample
// gradient work (the hot path of the adaptive mixing learner).  Every Arg
// trains bitwise-identical networks; only the wall-clock moves.
void BM_PpoUpdate(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::PpoConfig config;
  config.policy_hidden = {64, 64};
  config.value_hidden = {64, 64};
  config.steps_per_iteration = 512;
  config.update_epochs = 6;
  config.minibatch = 64;
  config.num_workers = static_cast<int>(state.range(0));
  rl::PpoGaussian ppo(config);
  ppo.initialize(env);
  for (auto _ : state)
    benchmark::DoNotOptimize(ppo.run_iterations(env, 1));
}
BENCHMARK(BM_PpoUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of the DDPG critic/actor minibatch passes with worker count
// (Arg; 1 = serial).  Each iteration runs one episode past warmup, i.e.
// max_episode_steps env steps each followed by a full parallel update
// (target pre-pass, critic regression, actor dQ/da).
void BM_DdpgUpdate(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::DdpgConfig config;
  config.actor_hidden = {64, 64};
  config.critic_hidden = {64, 64};
  config.batch_size = 64;
  config.warmup_steps = 64;  // replay fills during the first episodes.
  config.num_workers = static_cast<int>(state.range(0));
  rl::Ddpg ddpg(config);
  ddpg.initialize(env);
  (void)ddpg.run_episodes(env, 4);  // past warmup: every step updates.
  for (auto _ : state)
    benchmark::DoNotOptimize(ddpg.run_episodes(env, 1));
}
BENCHMARK(BM_DdpgUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of sharded PPO collection with the env-shard count (Arg; 1 = one
// env replica, serial).  Each timed iteration is one PPO training iteration
// with update_epochs = 0, i.e. almost pure collection: episode slots run in
// waves of Arg env clones on a dedicated Arg-worker pool.  Every Arg
// collects bitwise-identical batches (the slot decomposition is fixed);
// only the wall-clock moves.
void BM_PpoCollect(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::PpoConfig config;
  config.policy_hidden = {64, 64};
  config.value_hidden = {64, 64};
  config.steps_per_iteration = 2048;
  config.update_epochs = 0;  // isolate collection from the update passes.
  config.num_workers = static_cast<int>(state.range(0));
  config.num_env_shards = static_cast<int>(state.range(0));
  rl::PpoGaussian ppo(config);
  ppo.initialize(env);
  for (auto _ : state)
    benchmark::DoNotOptimize(ppo.run_iterations(env, 1));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          config.steps_per_iteration);
}
BENCHMARK(BM_PpoCollect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scaling of DDPG's sharded warmup exploration with the env-shard count
// (Arg).  Each timed iteration consumes a fresh trainer's random-action
// warmup (the exploration phase that fans across env clones); the episode
// budget is sized to stay inside the warmup, so no learned-phase updates
// pollute the measurement.  As with BM_PpoCollect, every Arg produces
// bitwise-identical replay contents.
void BM_DdpgCollect(benchmark::State& state) {
  testutil::PointMassEnv env;
  rl::DdpgConfig config;
  config.actor_hidden = {64, 64};
  config.critic_hidden = {64, 64};
  config.batch_size = 64;
  config.warmup_steps = 2048;
  config.num_workers = static_cast<int>(state.range(0));
  config.num_env_shards = static_cast<int>(state.range(0));
  // 68 episodes * <= 30 steps stays at or under the 2048-step warmup.
  const int warmup_episodes = 68;
  for (auto _ : state) {
    state.PauseTiming();
    rl::Ddpg ddpg(config);
    ddpg.initialize(env);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ddpg.run_episodes(env, warmup_episodes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(warmup_episodes) * 30);
}
BENCHMARK(BM_DdpgCollect)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
