// Ablation G (extension): NN-abstraction engine comparison on the
// oscillator's κ* — Bernstein polynomial (ReachNN-style, the paper's
// Section III-C), interval bound propagation (Verisig-adjacent), and the
// hybrid intersection of both.
//
// Expected shape: IBP is cheapest but loosest (smaller certified invariant
// set / may fail), Bernstein is tight but pays Π(dᵢ+1) samples per box,
// hybrid is at least as tight as Bernstein at modest extra cost.
#include <cstdio>

#include "bench_common.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"
#include "verify/invariant.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: abstraction engine (Bernstein / IBP / hybrid)",
                      "Section III-C mechanism study");

  const auto artifacts = bench::load_pipeline("vanderpol");

  util::CsvWriter csv(util::output_dir() + "/ablation_abstraction.csv",
                      {"method", "xi_volume_pct", "seconds", "nn_evals",
                       "partitions", "completed"});
  std::printf("\n%-12s %14s %10s %12s %12s\n", "method", "XI vol (%)",
              "time (s)", "nn-evals", "partitions");

  const std::pair<std::string, verify::AbstractionMethod> methods[] = {
      {"bernstein", verify::AbstractionMethod::kBernstein},
      {"ibp", verify::AbstractionMethod::kIntervalPropagation},
      {"hybrid", verify::AbstractionMethod::kHybrid}};
  for (const auto& [name, method] : methods) {
    verify::InvariantConfig config;
    config.grid = {80, 80};  // match bench_fig3's certified setting.
    config.abstraction.method = method;
    config.abstraction.epsilon_target = 0.4;
    config.abstraction.max_degree = 10;
    config.abstraction.max_partition_depth = 10;
    const verify::InvariantSetComputer computer(
        artifacts.system, *artifacts.robust_student, config);
    const auto result = computer.compute();
    std::printf("%-12s %14.1f %10.2f %12ld %12ld%s\n", name.c_str(),
                100.0 * result.volume_fraction, result.seconds,
                result.nn_evaluations, result.partitions,
                result.completed ? "" : "  (budget exhausted)");
    csv.row_text({name, util::format_number(100.0 * result.volume_fraction),
                  util::format_number(result.seconds),
                  std::to_string(result.nn_evaluations),
                  std::to_string(result.partitions),
                  result.completed ? "1" : "0"});
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_abstraction.csv").c_str());
  return 0;
}
