// Ablation F (extension): attack-strength study on the oscillator students.
// Compares random noise, single-step FGSM (the paper's attack), and
// multi-step PGD at increasing magnitudes.  Expected shape: for each
// magnitude PGD ≤ FGSM ≤ noise in safe rate (stronger optimization hurts
// more), and κ* degrades more slowly than κD everywhere.
#include <cstdio>
#include <vector>

#include "attack/fgsm.h"
#include "attack/pgd.h"
#include "bench_common.h"
#include "core/rollout.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: attack strength (noise / FGSM / PGD)",
                      "robustness evaluation methodology");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto& system = *artifacts.system;

  util::CsvWriter csv(util::output_dir() + "/ablation_attack.csv",
                      {"magnitude_pct", "attack", "sr_kD_pct", "sr_kstar_pct",
                       "e_kD", "e_kstar"});
  std::printf("\n%-10s %-8s | %10s %10s | %10s %10s\n", "magnitude", "attack",
              "Sr(kD)%", "Sr(k*)%", "e(kD)", "e(k*)");

  for (const double fraction : {0.10, 0.15, 0.20}) {
    const la::Vec bound = attack::perturbation_bound(system, fraction);
    const std::pair<std::string, attack::PerturbationPtr> attacks[] = {
        {"noise", std::make_shared<attack::UniformNoise>(bound)},
        {"fgsm", std::make_shared<attack::FgsmAttack>(bound)},
        {"pgd", std::make_shared<attack::PgdAttack>(bound)}};
    // One batch per controller spanning the whole (initial-state × seed ×
    // attack-model) grid at this magnitude; each attack block reuses the
    // evaluation seeding scheme, so numbers match a per-attack evaluate().
    std::vector<core::RolloutJob> jobs;
    for (const auto& [name, model] : attacks) {
      const auto block = core::make_eval_jobs(system, bench::kEvalStates,
                                              bench::kEvalSeed, model.get());
      jobs.insert(jobs.end(), block.begin(), block.end());
    }
    const auto results_d =
        core::batch_rollout(system, *artifacts.direct_student, jobs);
    const auto results_r =
        core::batch_rollout(system, *artifacts.robust_student, jobs);
    std::size_t offset = 0;
    for (const auto& [name, model] : attacks) {
      const auto rd =
          core::summarize_rollouts(results_d, offset, bench::kEvalStates);
      const auto rr =
          core::summarize_rollouts(results_r, offset, bench::kEvalStates);
      offset += bench::kEvalStates;
      std::printf("%9.0f%% %-8s | %10.1f %10.1f | %10s %10s\n",
                  100.0 * fraction, name.c_str(), 100.0 * rd.safe_rate,
                  100.0 * rr.safe_rate,
                  core::format_energy(rd.mean_energy).c_str(),
                  core::format_energy(rr.mean_energy).c_str());
      csv.row_text({util::format_number(100.0 * fraction), name,
                    util::format_number(100.0 * rd.safe_rate),
                    util::format_number(100.0 * rr.safe_rate),
                    util::format_number(rd.mean_energy),
                    util::format_number(rr.mean_energy)});
    }
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_attack.csv").c_str());
  return 0;
}
