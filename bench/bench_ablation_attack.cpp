// Ablation F (extension): attack-strength study on the oscillator students.
// Compares random noise, single-step FGSM (the paper's attack), and
// multi-step PGD at increasing magnitudes.  Expected shape: for each
// magnitude PGD ≤ FGSM ≤ noise in safe rate (stronger optimization hurts
// more), and κ* degrades more slowly than κD everywhere.
#include <cstdio>

#include "attack/fgsm.h"
#include "attack/pgd.h"
#include "bench_common.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: attack strength (noise / FGSM / PGD)",
                      "robustness evaluation methodology");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto& system = *artifacts.system;

  util::CsvWriter csv(util::output_dir() + "/ablation_attack.csv",
                      {"magnitude_pct", "attack", "sr_kD_pct", "sr_kstar_pct",
                       "e_kD", "e_kstar"});
  std::printf("\n%-10s %-8s | %10s %10s | %10s %10s\n", "magnitude", "attack",
              "Sr(kD)%", "Sr(k*)%", "e(kD)", "e(k*)");

  for (const double fraction : {0.10, 0.15, 0.20}) {
    const la::Vec bound = attack::perturbation_bound(system, fraction);
    const std::pair<std::string, attack::PerturbationPtr> attacks[] = {
        {"noise", std::make_shared<attack::UniformNoise>(bound)},
        {"fgsm", std::make_shared<attack::FgsmAttack>(bound)},
        {"pgd", std::make_shared<attack::PgdAttack>(bound)}};
    for (const auto& [name, model] : attacks) {
      core::EvalConfig config;
      config.num_initial_states = bench::kEvalStates;
      config.seed = bench::kEvalSeed;
      config.perturbation = model;
      const auto rd = core::evaluate(system, *artifacts.direct_student, config);
      const auto rr = core::evaluate(system, *artifacts.robust_student, config);
      std::printf("%9.0f%% %-8s | %10.1f %10.1f | %10.1f %10.1f\n",
                  100.0 * fraction, name.c_str(), 100.0 * rd.safe_rate,
                  100.0 * rr.safe_rate, rd.mean_energy, rr.mean_energy);
      csv.row_text({util::format_number(100.0 * fraction), name,
                    util::format_number(100.0 * rd.safe_rate),
                    util::format_number(100.0 * rr.safe_rate),
                    util::format_number(rd.mean_energy),
                    util::format_number(rr.mean_energy)});
    }
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_attack.csv").c_str());
  return 0;
}
