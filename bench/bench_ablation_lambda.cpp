// Ablation B: the L2 regularization weight λ of the robust-distillation
// loss (Algorithm 1 line 14) on the Van der Pol oscillator.
//
// Expected shape: the student's certified Lipschitz constant decreases
// monotonically (in trend) with λ — the paper's verifiability lever —
// while too-large λ degrades the clean regression loss.
#include <cstdio>

#include "bench_common.h"
#include "core/distiller.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: L2 weight lambda",
                      "Algorithm 1 line 14 (design-choice study)");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto base_config = core::default_pipeline_config("vanderpol").distill;

  util::CsvWriter csv(util::output_dir() + "/ablation_lambda.csv",
                      {"lambda", "lipschitz", "clean_loss", "clean_sr_pct",
                       "clean_energy"});
  std::printf("\n%-10s %10s %12s %10s %12s\n", "lambda", "L", "clean-loss",
              "Sr (%)", "e");
  for (const double lambda : {0.0, 1e-4, 5e-4, 1.5e-3, 5e-3, 2e-2}) {
    core::DistillConfig config = base_config;
    config.lambda_l2 = lambda;
    const auto result = core::distill(*artifacts.system, *artifacts.mixed,
                                      config, "lambda-ablation");
    const auto clean =
        bench::evaluate_clean(*artifacts.system, *result.student);
    std::printf("%-10.0e %10.2f %12.4f %10.1f %12s\n", lambda,
                result.lipschitz, result.final_loss, 100.0 * clean.safe_rate,
                core::format_energy(clean.mean_energy).c_str());
    csv.row({lambda, result.lipschitz, result.final_loss,
             100.0 * clean.safe_rate, clean.mean_energy});
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_lambda.csv").c_str());
  return 0;
}
