// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "sys/system.h"

namespace cocktail::bench {

/// Evaluation sample count: the paper samples 500 initial states.
inline constexpr int kEvalStates = 500;
/// Common evaluation seed so every bench compares on the same states.
inline constexpr std::uint64_t kEvalSeed = 424242;
/// Attack / noise magnitudes: "between 10%-15% of the system state value
/// bound" (Section IV).
inline constexpr double kAttackFraction = 0.12;
inline constexpr double kNoiseFraction = 0.10;

/// Loads (or trains into the shared cache) the full pipeline of a system.
[[nodiscard]] core::PipelineArtifacts load_pipeline(const std::string& system_name);

/// Clean evaluation with the shared seed.
[[nodiscard]] core::EvalResult evaluate_clean(const sys::System& system,
                                              const ctrl::Controller& controller);

/// Evaluation under the closed-loop FGSM attack.
[[nodiscard]] core::EvalResult evaluate_attacked(
    const sys::System& system, const ctrl::Controller& controller,
    double fraction = kAttackFraction);

/// Evaluation under uniform measurement noise.
[[nodiscard]] core::EvalResult evaluate_noisy(
    const sys::System& system, const ctrl::Controller& controller,
    double fraction = kNoiseFraction);

/// Formats a Lipschitz value, printing "-" for uncertified controllers as
/// Table I does.
[[nodiscard]] std::string format_lipschitz(double value);

/// Prints the bench banner with the reproduction context.
void print_banner(const std::string& title, const std::string& paper_ref);

}  // namespace cocktail::bench
