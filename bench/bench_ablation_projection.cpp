// Ablation E (extension): hard spectral-norm projection (Pauli et al. [19],
// cited by the paper) vs the paper's soft λ‖q‖² regularization as the
// Lipschitz-control mechanism inside robust distillation.
//
// Expected shape: the projection gives a *certified* L ≤ cap^depth at some
// cost in clean regression loss; λ trades the same axis smoothly.  Both are
// run on the oscillator's mixed teacher.
#include <cstdio>

#include "bench_common.h"
#include "core/distiller.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"
#include "util/string_util.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: spectral projection vs L2",
                      "Lipschitz-control mechanism (extension of Alg. 1)");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto base = core::default_pipeline_config("vanderpol").distill;

  util::CsvWriter csv(util::output_dir() + "/ablation_projection.csv",
                      {"variant", "lipschitz", "clean_loss", "clean_sr_pct",
                       "attack_sr_pct", "attack_energy"});
  std::printf("\n%-22s %10s %12s %10s %12s %12s\n", "variant", "L",
              "clean-loss", "Sr (%)", "Sr-atk (%)", "e-atk");

  auto run = [&](const std::string& label, const core::DistillConfig& config) {
    const auto result = core::distill(*artifacts.system, *artifacts.mixed,
                                      config, label);
    const auto clean =
        bench::evaluate_clean(*artifacts.system, *result.student);
    const auto attacked =
        bench::evaluate_attacked(*artifacts.system, *result.student);
    std::printf("%-22s %10.2f %12.4f %10.1f %12.1f %12s\n", label.c_str(),
                result.lipschitz, result.final_loss, 100.0 * clean.safe_rate,
                100.0 * attacked.safe_rate,
                core::format_energy(attacked.mean_energy).c_str());
    csv.row_text({label, util::format_number(result.lipschitz),
                  util::format_number(result.final_loss),
                  util::format_number(100.0 * clean.safe_rate),
                  util::format_number(100.0 * attacked.safe_rate),
                  util::format_number(attacked.mean_energy)});
  };

  {
    core::DistillConfig direct = base.direct();
    run("direct (kD)", direct);
  }
  {
    core::DistillConfig l2 = base;  // the paper's Algorithm 1.
    run("L2 (paper, k*)", l2);
  }
  for (const double cap : {6.0, 4.0, 2.5}) {
    core::DistillConfig projected = base;
    projected.lambda_l2 = 0.0;
    projected.spectral_norm_cap = cap;
    run(util::format("projection cap=%.1f", cap), projected);
  }
  {
    core::DistillConfig both = base;
    both.spectral_norm_cap = 4.0;
    run("L2 + projection", both);
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_projection.csv").c_str());
  return 0;
}
