// Ablation C: the super-space argument of Proposition 1.  The adaptation
// spaces form a strict inclusion chain
//
//   switching {e_i}  ⊂  finite simplex grid ([11])  ⊂  box [-1, 1]^n
//                    ⊂  box [-1.5, 1.5]^n  (AB = 1.5, Cocktail)
//
// so the attainable reward (and in practice the safe control rate) should
// be monotone along the chain.  All learners share budgets and seeds.
#include <cstdio>

#include "bench_common.h"
#include "core/mixing.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"
#include "util/string_util.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: adaptation action space",
                      "Proposition 1 (switching vs weighted mixing)");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto base = core::default_pipeline_config("vanderpol");

  // Reduced shared budget: this ablation trains three fresh policies.
  rl::PpoConfig ppo = base.mixing.ppo;
  ppo.iterations = 25;

  util::CsvWriter csv(util::output_dir() + "/ablation_actionspace.csv",
                      {"action_space", "final_return", "clean_sr_pct",
                       "clean_energy"});
  std::printf("\n%-18s %14s %10s %12s\n", "action space", "final-return",
              "Sr (%)", "e");

  auto report = [&](const std::string& label, double final_return,
                    const ctrl::Controller& controller) {
    const auto clean = bench::evaluate_clean(*artifacts.system, controller);
    std::printf("%-18s %14.2f %10.1f %12s\n", label.c_str(), final_return,
                100.0 * clean.safe_rate,
                core::format_energy(clean.mean_energy).c_str());
    csv.row_text({label, util::format_number(final_return),
                  util::format_number(100.0 * clean.safe_rate),
                  util::format_number(clean.mean_energy)});
  };

  {
    core::SwitchingConfig config;
    config.ppo = ppo;
    const auto result =
        core::train_switching(artifacts.system, artifacts.experts, config);
    report("switching (AS)", result.stats.final_return_mean(),
           *result.controller);
  }
  {
    core::FiniteWeightedConfig config;
    config.resolution = 4;
    config.ppo = ppo;
    const auto result = core::train_finite_weighted(
        artifacts.system, artifacts.experts, config);
    report("simplex grid [11]", result.stats.final_return_mean(),
           *result.controller);
  }
  for (const double bound : {1.0, 1.5}) {
    core::MixingConfig config;
    config.weight_bound = bound;
    config.ppo = ppo;
    const auto result = core::train_adaptive_mixing(
        artifacts.system, artifacts.experts, config);
    report(util::format("mixing AB=%.1f", bound),
           result.stats.final_return_mean(), *result.controller);
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_actionspace.csv").c_str());
  return 0;
}
