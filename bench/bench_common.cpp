#include "bench_common.h"

#include <cstdio>

#include "attack/fgsm.h"
#include "attack/perturbation.h"
#include "sys/registry.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cocktail::bench {

core::PipelineArtifacts load_pipeline(const std::string& system_name) {
  util::set_log_level(util::LogLevel::kInfo);
  sys::SystemPtr system = sys::make_system(system_name);
  const auto config = core::default_pipeline_config(system_name);
  return core::run_pipeline(system, config);
}

core::EvalResult evaluate_clean(const sys::System& system,
                                const ctrl::Controller& controller) {
  core::EvalConfig config;
  config.num_initial_states = kEvalStates;
  config.seed = kEvalSeed;
  return core::evaluate(system, controller, config);
}

core::EvalResult evaluate_attacked(const sys::System& system,
                                   const ctrl::Controller& controller,
                                   double fraction) {
  core::EvalConfig config;
  config.num_initial_states = kEvalStates;
  config.seed = kEvalSeed;
  config.perturbation = std::make_shared<attack::FgsmAttack>(
      attack::perturbation_bound(system, fraction));
  return core::evaluate(system, controller, config);
}

core::EvalResult evaluate_noisy(const sys::System& system,
                                const ctrl::Controller& controller,
                                double fraction) {
  core::EvalConfig config;
  config.num_initial_states = kEvalStates;
  config.seed = kEvalSeed;
  config.perturbation = std::make_shared<attack::UniformNoise>(
      attack::perturbation_bound(system, fraction));
  return core::evaluate(system, controller, config);
}

std::string format_lipschitz(double value) {
  if (value < 0.0) return "-";
  return util::format("%.2f", value);
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("Cocktail (DAC 2021) reproduction — %s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace cocktail::bench
