// Fig 3 reproduction: control-invariant set XI of the Van der Pol
// oscillator for κ* and κD, with verification wall-clock time (the paper's
// verifiability metric: ~32 minutes for κ* vs ~11 hours for κD on their
// toolchain).
//
// Shape that must hold: the κ* computation is substantially faster (its
// smaller Lipschitz constant needs lower Bernstein degrees and fewer
// partitions) and its XI is at least as large (less conservative); the
// paper's 1500-simulation safety check from inside XI must pass.
#include <cstdio>

#include "bench_common.h"
#include "core/rollout.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"
#include "verify/invariant.h"

namespace {

cocktail::verify::InvariantConfig fig3_config() {
  cocktail::verify::InvariantConfig config;
  // 80x80 cells with eps = 0.4: fine enough that the enclosure slack
  // (cell width + Bernstein error + disturbance) stays below the closed
  // loop's one-step inward progress at the invariant-set boundary — the
  // empirical threshold where the fixed point stops eroding to nothing.
  config.grid = {80, 80};
  config.abstraction.epsilon_target = 0.4;
  config.abstraction.max_degree = 10;
  config.abstraction.max_partition_depth = 10;
  config.budget.max_nn_evaluations = 400'000'000;
  config.budget.max_partitions = 10'000'000;
  return config;
}

}  // namespace

int main() {
  using namespace cocktail;
  bench::print_banner("Fig 3",
                      "paper Fig 3 (invariant set of the oscillator + "
                      "verification time)");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto& system = *artifacts.system;
  const sys::Box domain = system.safe_region();

  struct Subject {
    std::string label;
    ctrl::ControllerPtr controller;
  };
  const Subject subjects[] = {{"k*", artifacts.robust_student},
                              {"kD", artifacts.direct_student}};

  verify::InvariantResult results[2];
  for (int i = 0; i < 2; ++i) {
    std::printf("\ncomputing XI for %s (L = %.2f)...\n",
                subjects[i].label.c_str(),
                subjects[i].controller->lipschitz_bound());
    const verify::InvariantSetComputer computer(
        artifacts.system, *subjects[i].controller, fig3_config());
    results[i] = computer.compute();
    if (!results[i].completed) {
      std::printf("  -> FAILED: %s\n", results[i].failure.c_str());
      continue;
    }
    std::printf("  -> |XI|/|X| = %.1f%%, time = %.2f s, NN evals = %ld, "
                "partitions = %ld\n",
                100.0 * results[i].volume_fraction, results[i].seconds,
                results[i].nn_evaluations, results[i].partitions);

    // Dump member cells for plotting.
    const std::string path = util::output_dir() + "/fig3_xi_" +
                             (i == 0 ? "kstar" : "kD") + ".csv";
    util::CsvWriter csv(path, {"x1_lo", "x1_hi", "x2_lo", "x2_hi"});
    for (std::size_t c = 0; c < results[i].cell_count(); ++c) {
      if (!results[i].member[c]) continue;
      const auto box = results[i].cell_box(domain, c);
      csv.row({box[0].lo(), box[0].hi(), box[1].lo(), box[1].hi()});
    }
    std::printf("  -> cells written to %s\n", path.c_str());
  }

  if (results[0].completed && results[1].completed) {
    std::printf("\nverification-time ratio kD/k* = %.1fx  (paper: ~20x)\n",
                results[1].seconds / std::max(results[0].seconds, 1e-9));
    std::printf("volume: XI(k*) = %.1f%%, XI(kD) = %.1f%%  (paper: XI(kD) "
                "more conservative)\n",
                100.0 * results[0].volume_fraction,
                100.0 * results[1].volume_fraction);
  }

  // The paper's closing validation: 1500 simulations from inside XI(k*),
  // all must remain safe.
  if (results[0].completed && results[0].volume_fraction > 0.0) {
    util::Rng rng(4242);
    int simulated = 0, safe = 0;
    while (simulated < 1500) {
      const la::Vec s0 = domain.sample(rng);
      if (!results[0].contains(domain, s0)) continue;
      ++simulated;
      core::RolloutConfig config;
      config.horizon = 300;
      const auto r = core::rollout(system, *artifacts.robust_student, s0,
                                   nullptr, rng, config);
      safe += r.safe;
    }
    std::printf("\nsimulated %d initial states inside XI(k*): %d stayed "
                "safe\n",
                simulated, safe);
  }
  return 0;
}
