// Fig 2 reproduction: the normalized control signal u(t) of κD and κ* when
// the system runs under FGSM attacks, for all three systems.  The paper's
// claim: κ*'s signal is visibly smoother and lower-energy; κD saturates
// and oscillates because its larger Lipschitz constant amplifies the state
// perturbations.
//
// Output: one CSV per system (step, u_kD, u_kstar, normalized by |U|) plus
// summary statistics (signal energy and total variation).
#include <cmath>
#include <cstdio>

#include "attack/fgsm.h"
#include "bench_common.h"
#include "core/rollout.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

namespace {

struct TraceStats {
  double energy = 0.0;            ///< sum |u| over the trace.
  double total_variation = 0.0;   ///< sum |u(t+1) - u(t)| (oscillation).
};

TraceStats stats_of(const std::vector<cocktail::la::Vec>& controls) {
  TraceStats out;
  for (std::size_t t = 0; t < controls.size(); ++t) {
    out.energy += std::abs(controls[t][0]);
    if (t > 0)
      out.total_variation += std::abs(controls[t][0] - controls[t - 1][0]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace cocktail;
  bench::print_banner("Fig 2",
                      "paper Fig 2 (control signal under adversarial attack)");

  for (const auto& system_name : sys::system_names()) {
    const auto artifacts = bench::load_pipeline(system_name);
    const auto& system = *artifacts.system;
    const double u_max = system.control_bounds().hi[0];

    const attack::FgsmAttack fgsm(
        attack::perturbation_bound(system, bench::kAttackFraction));
    core::RolloutConfig config;
    config.record_trajectory = true;

    // The same initial state and attack seed for both students (paired).
    util::Rng init_rng(util::derive_seed(bench::kEvalSeed, 9));
    const la::Vec s0 = system.sample_initial_state(init_rng);
    util::Rng rng_d(1234), rng_r(1234);
    const auto trace_d = core::rollout(system, *artifacts.direct_student, s0,
                                       &fgsm, rng_d, config);
    const auto trace_r = core::rollout(system, *artifacts.robust_student, s0,
                                       &fgsm, rng_r, config);

    const std::string path =
        util::output_dir() + "/fig2_" + system_name + ".csv";
    util::CsvWriter csv(path, {"step", "u_kD_normalized", "u_kstar_normalized"});
    const std::size_t steps =
        std::min(trace_d.controls.size(), trace_r.controls.size());
    for (std::size_t t = 0; t < steps; ++t)
      csv.row({static_cast<double>(t), trace_d.controls[t][0] / u_max,
               trace_r.controls[t][0] / u_max});

    const TraceStats sd = stats_of(trace_d.controls);
    const TraceStats sr = stats_of(trace_r.controls);
    std::printf("\n--- %s (attacked trajectory from the same s0) ---\n",
                system_name.c_str());
    std::printf("%-6s %10s %16s %10s\n", "ctrl", "energy", "total-variation",
                "steps");
    std::printf("%-6s %10.1f %16.1f %10zu\n", "kD", sd.energy,
                sd.total_variation, trace_d.controls.size());
    std::printf("%-6s %10.1f %16.1f %10zu\n", "k*", sr.energy,
                sr.total_variation, trace_r.controls.size());
    std::printf("trace written to %s\n", path.c_str());
  }
  return 0;
}
