// Table I reproduction: safe control rate Sr, control energy e, and
// Lipschitz constant L for κ1, κ2, AS, AW, κD, κ* on all three systems,
// without attacks or measurement noises.
//
// Shape that must hold (absolute numbers depend on retrained experts):
//   * Sr: κ*, κD, AW  >  AS  >  max(κ1, κ2)
//   * e:  e(κ*) < e(κD) and e(κ*) < e(AW)
//   * L:  L(κ*) < L(κD); AS/AW print "-" (no certified bound)
#include <cstdio>

#include "bench_common.h"
#include "core/stats.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Table I", "paper Table I (comparison with baselines)");

  util::CsvWriter csv(util::output_dir() + "/table1.csv",
                      {"system", "controller", "safe_rate_pct",
                       "sr_ci95_lo_pct", "sr_ci95_hi_pct", "energy",
                       "lipschitz"});

  for (const auto& system_name : sys::system_names()) {
    const auto artifacts = bench::load_pipeline(system_name);
    std::printf("\n--- %s ---\n", system_name.c_str());
    std::printf("%-8s %10s %16s %12s %12s\n", "ctrl", "Sr (%)", "95%-CI",
                "e", "L");
    for (const auto& [label, controller] :
         artifacts.table_row_controllers()) {
      const auto result = bench::evaluate_clean(*artifacts.system, *controller);
      const auto ci =
          core::wilson_interval(result.num_safe, result.num_total);
      const double lipschitz = controller->lipschitz_bound();
      std::printf("%-8s %10.1f  [%5.1f, %5.1f] %12s %12s\n", label.c_str(),
                  100.0 * result.safe_rate, 100.0 * ci.lo, 100.0 * ci.hi,
                  core::format_energy(result.mean_energy).c_str(),
                  bench::format_lipschitz(lipschitz).c_str());
      csv.row_text({system_name, label,
                    util::format_number(100.0 * result.safe_rate),
                    util::format_number(100.0 * ci.lo),
                    util::format_number(100.0 * ci.hi),
                    util::format_number(result.mean_energy),
                    bench::format_lipschitz(lipschitz)});
    }
  }
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
