// Table II reproduction: κD vs κ* under (a) optimized FGSM adversarial
// attacks and (b) uniform measurement noises on the system state, with
// magnitudes in the paper's 10%-15%-of-state-bound regime.
//
// Shape that must hold: Sr(κ*) >= Sr(κD) and e(κ*) < e(κD) in both
// columns — the robust distillation pays off exactly when the observation
// is perturbed.
#include <cstdio>

#include "attack/fgsm.h"
#include "bench_common.h"
#include "core/stats.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Table II",
                      "paper Table II (robustness under attacks and noises)");

  util::CsvWriter csv(util::output_dir() + "/table2.csv",
                      {"system", "controller", "perturbation",
                       "safe_rate_pct", "energy"});

  for (const auto& system_name : sys::system_names()) {
    const auto artifacts = bench::load_pipeline(system_name);
    std::printf("\n--- %s ---\n", system_name.c_str());
    std::printf("%-6s | %-26s | %-26s\n", "", "under adversarial attack",
                "with measurement noises");
    std::printf("%-6s | %10s %13s | %10s %13s\n", "ctrl", "Sr (%)", "e",
                "Sr (%)", "e");
    const std::pair<std::string, ctrl::ControllerPtr> students[] = {
        {"kD", artifacts.direct_student}, {"k*", artifacts.robust_student}};
    for (const auto& [label, controller] : students) {
      const auto attacked =
          bench::evaluate_attacked(*artifacts.system, *controller);
      const auto noisy = bench::evaluate_noisy(*artifacts.system, *controller);
      std::printf("%-6s | %10.1f %13s | %10.1f %13s\n", label.c_str(),
                  100.0 * attacked.safe_rate,
                  core::format_energy(attacked.mean_energy).c_str(),
                  100.0 * noisy.safe_rate,
                  core::format_energy(noisy.mean_energy).c_str());
      csv.row_text({system_name, label, "fgsm",
                    util::format_number(100.0 * attacked.safe_rate),
                    util::format_number(attacked.mean_energy)});
      csv.row_text({system_name, label, "noise",
                    util::format_number(100.0 * noisy.safe_rate),
                    util::format_number(noisy.mean_energy)});
    }
    // Paired comparison under attack (same initial states and streams):
    // removes the shared sampling noise from the κ* vs κD contrast.
    core::EvalConfig paired_config;
    paired_config.num_initial_states = bench::kEvalStates;
    paired_config.seed = bench::kEvalSeed;
    paired_config.perturbation = std::make_shared<attack::FgsmAttack>(
        attack::perturbation_bound(*artifacts.system,
                                   bench::kAttackFraction));
    const auto paired = core::evaluate_paired(
        *artifacts.system, *artifacts.robust_student,
        *artifacts.direct_student, paired_config);
    std::printf("paired (attack): k* safe only on %d states, kD safe only "
                "on %d, both %d, neither %d\n",
                paired.only_a_safe, paired.only_b_safe, paired.both_safe,
                paired.neither_safe);
    // energy_a/energy_b are NaN when no trajectory was safe under both
    // controllers (PairedOutcome contract) — print only a real comparison.
    if (paired.both_safe > 0)
      std::printf("paired (attack): both-safe energy k* %.1f vs kD %.1f\n",
                  paired.energy_a, paired.energy_b);
    else
      std::printf("paired (attack): no both-safe states, energies "
                  "incomparable\n");
  }
  std::printf("\nCSV written to %s\n", csv.path().c_str());
  return 0;
}
