// Ablation A: the probabilistic adversarial-training probability p of
// Algorithm 1 (line 12), on the Van der Pol oscillator.
//
// p = 0 is direct distillation (κD); p = 1 trains on adversarial examples
// only.  Expected shape: attacked safe-rate/energy improve as p grows from
// 0, while very large p trades away clean fit quality.
#include <cstdio>

#include "bench_common.h"
#include "core/distiller.h"
#include "sys/registry.h"
#include "util/csv.h"
#include "util/paths.h"

int main() {
  using namespace cocktail;
  bench::print_banner("Ablation: adversarial probability p",
                      "Algorithm 1 line 12 (design-choice study)");

  const auto artifacts = bench::load_pipeline("vanderpol");
  const auto base_config = core::default_pipeline_config("vanderpol").distill;

  util::CsvWriter csv(util::output_dir() + "/ablation_p.csv",
                      {"p", "lipschitz", "clean_loss", "clean_sr_pct",
                       "attack_sr_pct", "attack_energy"});
  std::printf("\n%-6s %10s %12s %10s %12s %14s\n", "p", "L", "clean-loss",
              "Sr (%)", "Sr-atk (%)", "e-atk");
  for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::DistillConfig config = base_config;
    config.adversarial_prob = p;
    const auto result = core::distill(*artifacts.system, *artifacts.mixed,
                                      config, "p-ablation");
    const auto clean =
        bench::evaluate_clean(*artifacts.system, *result.student);
    const auto attacked =
        bench::evaluate_attacked(*artifacts.system, *result.student);
    std::printf("%-6.2f %10.2f %12.4f %10.1f %12.1f %14s\n", p,
                result.lipschitz, result.final_loss, 100.0 * clean.safe_rate,
                100.0 * attacked.safe_rate,
                core::format_energy(attacked.mean_energy).c_str());
    csv.row({p, result.lipschitz, result.final_loss, 100.0 * clean.safe_rate,
             100.0 * attacked.safe_rate, attacked.mean_energy});
  }
  std::printf("\nCSV written to %s\n",
              (util::output_dir() + "/ablation_p.csv").c_str());
  return 0;
}
